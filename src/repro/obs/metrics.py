"""The concurrency-safe telemetry core: histograms, gauges, registry.

The collector layer (:mod:`repro.obs.collector`) is deliberately
single-threaded: one :class:`~repro.obs.collector.Collector` per
execution context, no locks on the hot emit path.  This module is the
*aggregation* side — the pieces that make N concurrent traced
invocations (threads, asyncio tasks, batch items, future ``repro
serve`` requests) produce **one coherent snapshot**:

* :class:`Histogram` — a fixed log-bucketed latency distribution with
  exact ``count``/``sum``/``min``/``max`` and estimated percentiles
  (p50/p90/p99).  Mergeable: merging is associative and commutative
  (property-tested in ``tests/test_metrics.py``), so shards can be
  combined in any order.  Every span exit records its duration into
  the owning collector's histogram for that kind, so stage latencies
  (``check.unit``, ``link.static``, ``unit.compile``, ``dynlink.load``,
  the ``stage.*`` pipeline spans of ``repro batch``) are distributions,
  not just totals — p99 is visible, not averaged away.
* :class:`Gauge` — a last-value instrument with min/max envelope, for
  cache occupancy (``cache.occupancy.*``) and budget headroom
  (``budget.headroom.*``).  Gauge name families are registered in
  :data:`repro.obs.events.GAUGES` (linted by
  ``tests/test_obs_registry.py``).
* :class:`MetricsRegistry` — the lock-protected aggregation point.
  Child collector scopes (one per request/thread/task/batch item,
  opened with :meth:`MetricsRegistry.scope`) flush their counters,
  timers, histograms, and gauges into the registry on exit; when the
  registry has a *parent* collector, the child's events are adopted
  into it with span ids remapped into a fresh range, so the merged
  trace holds N disjoint, well-formed span trees with zero
  cross-contamination.
* :class:`PeriodicSnapshots` — a background thread writing versioned
  ``metrics1`` snapshots at an interval, for long-running processes.
* The ``metrics1`` snapshot format (:data:`SNAPSHOT_SCHEMA`), its
  reader/merger (:func:`load_snapshot`, :func:`merge_snapshot_files`),
  a Prometheus-style text exposition writer
  (:func:`render_prometheus`), and the renderers behind the ``repro
  metrics report|diff`` subcommands.

``docs/METRICS.md`` documents the schema and CLI.
"""

from __future__ import annotations

import json
import math
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Version tag of the metrics snapshot format.  Readers reject other
#: schemas instead of misinterpreting them.
SNAPSHOT_SCHEMA = "metrics1"

#: Histogram bucket growth factor: four buckets per doubling, so any
#: estimated percentile is within ~19% of the true sample value (the
#: property tests pin this bound).
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)

#: Values at or below this floor land in bucket 0.  One nanosecond:
#: below the resolution any latency here can meaningfully have.
FLOOR = 1e-9

#: Highest bucket index; values past ``FLOOR * GROWTH**MAX_BUCKET``
#: (~3e10 seconds) saturate into it rather than growing the table.
MAX_BUCKET = 260

#: The percentiles every summary reports, in order.
PERCENTILES = (0.5, 0.9, 0.99)


def bucket_index(value: float) -> int:
    """The log-bucket index of ``value`` (0 for the underflow bucket).

    Bucket ``i >= 1`` covers ``(FLOOR * GROWTH**(i-1),
    FLOOR * GROWTH**i]``; :func:`bucket_bound` gives the inclusive
    upper bound percentile estimation reports.
    """
    if value <= FLOOR:
        return 0
    index = math.ceil(math.log(value / FLOOR) / _LOG_GROWTH)
    return index if index < MAX_BUCKET else MAX_BUCKET


def bucket_bound(index: int) -> float:
    """The inclusive upper bound of bucket ``index`` (seconds)."""
    return FLOOR * GROWTH ** index


class Histogram:
    """A mergeable, fixed log-bucketed distribution of seconds.

    Buckets are sparse (a dict of index -> occurrences), so an idle
    histogram costs a few fields and a recorded one costs one entry
    per distinct ~19%-wide latency band.  ``count``/``sum``/``min``/
    ``max`` are exact; percentiles are estimated as the upper bound of
    the bucket holding the requested rank, clamped into
    ``[min, max]`` — never below the true sample quantile, never more
    than one bucket width (a :data:`GROWTH` factor) above it.
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets: dict[int, int] = {}

    # -- recording and merging ------------------------------------------

    def record(self, value: float) -> None:
        """Record one observation (negative values clamp to 0)."""
        value = float(value)
        if value < 0.0:
            value = 0.0
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (``other`` is unchanged)."""
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        return self

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    # -- reading --------------------------------------------------------

    def percentile(self, q: float) -> float:
        """The estimated ``q``-quantile (nearest-rank), in seconds."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                estimate = bucket_bound(index)
                if estimate > self.max:
                    estimate = self.max
                if estimate < self.min:
                    estimate = self.min
                return estimate
        return self.max  # unreachable unless buckets disagree with count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus the :data:`PERCENTILES`."""
        out: dict[str, float] = {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if self.count else 0.0,
            "max": round(self.max, 9),
            "mean": round(self.mean, 9),
        }
        for q in PERCENTILES:
            out[f"p{int(q * 100)}"] = round(self.percentile(q), 9)
        return out

    # -- wire form ------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """The ``metrics1`` wire form.

        ``buckets`` is a list of ``[index, count]`` pairs in index
        order (a JSON object would sort its string keys
        lexicographically and scramble the numeric order).  The
        summary percentiles ride along for human diffing; readers
        recompute them from the buckets.
        """
        payload: dict[str, object] = dict(self.summary())
        # The summary rounds for display; the exact moments must
        # round-trip bit-for-bit (JSON floats are repr-exact).
        payload["sum"] = self.sum
        payload["min"] = self.min if self.count else 0.0
        payload["max"] = self.max
        payload["buckets"] = [[index, self.buckets[index]]
                              for index in sorted(self.buckets)]
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "Histogram":
        """Inverse of :meth:`to_json` (summary fields are recomputed
        except the exact count/sum/min/max, which are carried)."""
        out = cls()
        out.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        out.sum = float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        out.min = (float(payload["min"])  # type: ignore[arg-type]
                   if out.count else math.inf)
        out.max = float(payload.get("max", 0.0))  # type: ignore[arg-type]
        for pair in payload.get("buckets", ()):  # type: ignore[union-attr]
            index, n = pair
            out.buckets[int(index)] = out.buckets.get(int(index), 0) + int(n)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.count == other.count
                and self.buckets == other.buckets
                and abs(self.sum - other.sum) <= 1e-9 * (1.0 + abs(self.sum))
                and (self.count == 0 or (self.min == other.min
                                         and self.max == other.max)))

    def __repr__(self) -> str:
        return (f"Histogram(count={self.count}, "
                f"p50={self.percentile(0.5):.6f}, "
                f"p99={self.percentile(0.99):.6f})")


class Gauge:
    """A last-value instrument with a min/max envelope.

    ``set`` overwrites the level; ``merge`` keeps the envelope of both
    sides and takes the merged-in gauge's last value when it has any
    updates (children flush on exit, so the child's reading is the
    newer one).
    """

    __slots__ = ("last", "min", "max", "updates")

    def __init__(self) -> None:
        self.last = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def merge(self, other: "Gauge") -> "Gauge":
        if other.updates:
            self.last = other.last
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
            self.updates += other.updates
        return self

    def copy(self) -> "Gauge":
        out = Gauge()
        out.merge(self)
        return out

    def to_json(self) -> dict[str, object]:
        return {
            "last": round(self.last, 9),
            "min": round(self.min, 9) if self.updates else 0.0,
            "max": round(self.max, 9) if self.updates else 0.0,
            "updates": self.updates,
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "Gauge":
        out = cls()
        updates = int(payload.get("updates", 0))  # type: ignore[arg-type]
        if updates:
            out.last = float(payload.get("last", 0.0))  # type: ignore[arg-type]
            out.min = float(payload.get("min", out.last))  # type: ignore[arg-type]
            out.max = float(payload.get("max", out.last))  # type: ignore[arg-type]
            out.updates = updates
        return out


class MetricsRegistry:
    """Lock-protected, process-lifetime metric aggregation.

    One registry outlives many collector scopes: each request, thread,
    task, or batch item runs under its own child
    :class:`~repro.obs.collector.Collector` (opened with
    :meth:`scope`), and the child's numbers are folded in atomically
    when the scope exits.  All mutation happens under one
    :class:`threading.Lock`, so concurrent scope exits, direct
    :meth:`observe`/:meth:`count`/:meth:`gauge` calls, and snapshot
    reads interleave safely.

    When constructed with a ``parent`` collector, each flushed child's
    *events* are also adopted into the parent — span ids remapped into
    a fresh range, timestamps rebased onto the parent's clock — so a
    ``--trace`` of a many-item run is one file holding every item's
    span tree, each tree disjoint and well formed.  Adoption is
    serialized by the registry lock; the parent must not be emitting
    concurrently (the typical shape — a driver whose own collector is
    idle while requests run — satisfies this by construction).
    """

    def __init__(self, parent=None) -> None:
        self._lock = threading.Lock()
        self._parent = parent
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.timer_calls: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, Gauge] = {}
        self.events = 0
        self.spans = 0
        self.dropped = 0
        self.dropped_kinds: dict[str, int] = {}
        self.flushes = 0
        self.snapshots_written = 0

    # -- direct recording (thread-safe) ---------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.record(seconds)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            g = self.gauges.get(name)
            if g is None:
                g = self.gauges[name] = Gauge()
            g.set(value)

    # -- absorbing collectors and snapshots -----------------------------

    def absorb(self, collector) -> None:
        """Fold one collector's metrics in (events are not kept here;
        give the registry a parent collector to aggregate those)."""
        with self._lock:
            self._absorb_locked(collector)
            if self._parent is not None and self._parent is not collector:
                self._parent.adopt(collector)

    def _absorb_locked(self, col) -> None:
        for name, value in col.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, seconds in col.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + seconds
        for name, calls in col.timer_calls.items():
            self.timer_calls[name] = self.timer_calls.get(name, 0) + calls
        for name, hist in col.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)
        for name, g in col.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = g.copy()
            else:
                mine.merge(g)
        self.events += len(col.events)
        self.spans += col._next_span
        self.dropped += col.dropped
        for kind, n in col.dropped_kinds.items():
            self.dropped_kinds[kind] = self.dropped_kinds.get(kind, 0) + n
        self.flushes += 1

    def merge_snapshot(self, payload: dict[str, object]) -> "MetricsRegistry":
        """Fold a ``metrics1`` snapshot (or a bare collector metrics
        dict) into the registry; used by ``repro metrics report`` to
        combine shards."""
        with self._lock:
            for name, value in (payload.get("counters") or {}).items():  # type: ignore[union-attr]
                self.counters[name] = self.counters.get(name, 0) + int(value)
            for name, t in (payload.get("timers") or {}).items():  # type: ignore[union-attr]
                self.timers[name] = (self.timers.get(name, 0.0)
                                     + float(t["seconds"]))
                self.timer_calls[name] = (self.timer_calls.get(name, 0)
                                          + int(t.get("calls", 0)))
            for name, h in (payload.get("histograms") or {}).items():  # type: ignore[union-attr]
                loaded = Histogram.from_json(h)
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = loaded
                else:
                    mine.merge(loaded)
            for name, g in (payload.get("gauges") or {}).items():  # type: ignore[union-attr]
                loaded_g = Gauge.from_json(g)
                mine_g = self.gauges.get(name)
                if mine_g is None:
                    self.gauges[name] = loaded_g
                else:
                    mine_g.merge(loaded_g)
            self.events += int(payload.get("events", 0))  # type: ignore[arg-type]
            self.spans += int(payload.get("spans", 0))  # type: ignore[arg-type]
            self.dropped += int(payload.get("dropped", 0))  # type: ignore[arg-type]
            for kind, n in (payload.get("dropped_by_kind") or {}).items():  # type: ignore[union-attr]
                self.dropped_kinds[kind] = \
                    self.dropped_kinds.get(kind, 0) + int(n)
            self.flushes += int(payload.get("flushes", 1))  # type: ignore[arg-type]
        return self

    # -- scoping --------------------------------------------------------

    @contextmanager
    def scope(self, record_events: bool | None = None) -> Iterator:
        """One traced invocation: a fresh child collector, flushed here
        on exit.

        The child is installed as the current collector for the
        dynamic extent (contextvar-scoped, so concurrent threads and
        tasks each see only their own).  ``record_events`` controls
        whether the child keeps event bodies; by default they are kept
        only when the registry has a parent collector to adopt them
        into — metrics-only scopes skip the per-event allocation
        entirely.
        """
        from repro.obs.collector import Collector, activate, deactivate

        if record_events is None:
            record_events = self._parent is not None
        child = Collector(record_events=record_events)
        token = activate(child)
        try:
            yield child
        finally:
            deactivate(token)
            child.emit("metric.flush", {
                "events": len(child.events), "spans": child._next_span})
            self.absorb(child)

    # -- snapshotting ---------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A JSON-ready ``metrics1`` snapshot with stable key order."""
        with self._lock:
            return _snapshot_dict(
                counters=self.counters, timers=self.timers,
                timer_calls=self.timer_calls, histograms=self.histograms,
                gauges=self.gauges, events=self.events, spans=self.spans,
                dropped=self.dropped, dropped_kinds=self.dropped_kinds,
                flushes=self.flushes)

    def drain(self) -> dict[str, object]:
        """Snapshot *and reset*, atomically: the cross-process
        fragment primitive.

        A serve worker process keeps one long-lived registry, runs
        each request under :meth:`scope`, and drains afterwards — the
        returned ``metrics1`` fragment carries exactly that request's
        numbers and rides the response pipe back to the parent, which
        folds it in with :meth:`merge_snapshot`.  Because merging is
        associative and order-independent (property-tested across a
        real process boundary), fragments from racing workers combine
        into one coherent parent snapshot regardless of arrival
        order, and nothing is ever counted twice.
        """
        with self._lock:
            snap = _snapshot_dict(
                counters=self.counters, timers=self.timers,
                timer_calls=self.timer_calls, histograms=self.histograms,
                gauges=self.gauges, events=self.events, spans=self.spans,
                dropped=self.dropped, dropped_kinds=self.dropped_kinds,
                flushes=self.flushes)
            self.counters = {}
            self.timers = {}
            self.timer_calls = {}
            self.histograms = {}
            self.gauges = {}
            self.events = 0
            self.spans = 0
            self.dropped = 0
            self.dropped_kinds = {}
            self.flushes = 0
        return snap


def _snapshot_dict(*, counters: dict[str, int], timers: dict[str, float],
                   timer_calls: dict[str, int],
                   histograms: dict[str, Histogram],
                   gauges: dict[str, Gauge], events: int, spans: int,
                   dropped: int, dropped_kinds: dict[str, int],
                   flushes: int | None = None) -> dict[str, object]:
    """The shared ``metrics1`` shape (collectors and registries agree)."""
    out: dict[str, object] = {
        "schema": SNAPSHOT_SCHEMA,
        "events": events,
        "spans": spans,
        "dropped": dropped,
        "dropped_by_kind": dict(sorted(dropped_kinds.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": {name: gauges[name].to_json()
                   for name in sorted(gauges)},
        "histograms": {name: histograms[name].to_json()
                       for name in sorted(histograms)},
        "timers": {name: {"seconds": timers[name],
                          "calls": timer_calls.get(name, 0)}
                   for name in sorted(timers)},
    }
    if flushes is not None:
        out["flushes"] = flushes
    return out


class PeriodicSnapshots:
    """Write ``metrics1`` snapshots of a registry on an interval.

    For long-running processes (the coming ``repro serve``): a daemon
    thread writes the snapshot atomically (temp file + rename) every
    ``interval_s`` seconds, and once more on :meth:`stop`.  Use as a
    context manager or call :meth:`start`/:meth:`stop` directly.
    """

    def __init__(self, registry: MetricsRegistry, path: str | Path,
                 interval_s: float = 10.0):
        self.registry = registry
        self.path = Path(path)
        self.interval_s = interval_s
        self._halt = threading.Event()
        self._thread: threading.Thread | None = None

    def write_now(self) -> None:
        """Write one snapshot synchronously (atomic replace)."""
        payload = self.registry.snapshot()
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.path)
        self.registry.snapshots_written += 1
        from repro.obs.collector import current as _current

        col = _current()
        if col is not None:
            col.emit("metric.snapshot", {"path": str(self.path),
                                         "events": payload["events"]})

    def _loop(self) -> None:
        while not self._halt.wait(self.interval_s):
            self.write_now()

    def start(self) -> "PeriodicSnapshots":
        if self._thread is None:
            self._halt.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-metrics-snapshots",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Halt the thread and write a final snapshot."""
        self._halt.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.write_now()

    def __enter__(self) -> "PeriodicSnapshots":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Snapshot files: loading and merging
# ---------------------------------------------------------------------------


def load_snapshot(path: str | Path) -> dict[str, object]:
    """Read a metrics snapshot file, rejecting unknown schemas.

    Accepts ``metrics1`` files, the schema-less collector metrics
    shape older snapshots used (anything that is one JSON object with
    a ``counters`` key), and the link server's response envelope — a
    ``repro client metrics`` capture, whose snapshot rides under a
    ``"metrics"`` key — so serve-mode percentiles feed the same
    ``report``/``diff`` gates as file snapshots.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not JSON: {err}") from err
    if isinstance(payload, dict) and "counters" not in payload \
            and isinstance(payload.get("metrics"), dict):
        payload = payload["metrics"]
    if not isinstance(payload, dict) or "counters" not in payload:
        raise ValueError(f"{path}: not a metrics snapshot "
                         f"(no 'counters' object)")
    schema = payload.get("schema", SNAPSHOT_SCHEMA)
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"{path}: unsupported metrics schema {schema!r}")
    return payload


def merge_snapshot_files(paths: Sequence[str | Path]) -> dict[str, object]:
    """Load and merge snapshots; the result is again ``metrics1``."""
    registry = MetricsRegistry()
    for path in paths:
        registry.merge_snapshot(load_snapshot(path))
    return registry.snapshot()


# ---------------------------------------------------------------------------
# Rendering: percentile tables, report, diff, Prometheus exposition
# ---------------------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def render_percentiles(histograms: dict[str, Histogram],
                       title: str = "latency (ms)") -> list[str]:
    """A plain-text percentile table, one row per histogram."""
    if not histograms:
        return []
    width = max(len(name) for name in histograms)
    lines = [f"{title}:"]
    lines.append(f"  {'name'.ljust(width)}  {'count':>7}  {'mean':>10}  "
                 f"{'p50':>10}  {'p90':>10}  {'p99':>10}  {'max':>10}")
    for name in sorted(histograms):
        h = histograms[name]
        lines.append(
            f"  {name.ljust(width)}  {h.count:>7}  {_fmt_ms(h.mean):>10}  "
            f"{_fmt_ms(h.percentile(0.5)):>10}  "
            f"{_fmt_ms(h.percentile(0.9)):>10}  "
            f"{_fmt_ms(h.percentile(0.99)):>10}  {_fmt_ms(h.max):>10}")
    return lines


def render_metrics_report(snapshot: dict[str, object]) -> str:
    """The ``repro metrics report`` text for one (merged) snapshot."""
    histograms = {name: Histogram.from_json(payload)
                  for name, payload
                  in (snapshot.get("histograms") or {}).items()}  # type: ignore[union-attr]
    out: list[str] = []
    out.append(f"metrics report — {snapshot.get('events', 0)} events, "
               f"{snapshot.get('spans', 0)} spans, "
               f"{snapshot.get('dropped', 0)} dropped, "
               f"{snapshot.get('flushes', 1)} flush(es)")
    dropped_by_kind = snapshot.get("dropped_by_kind") or {}
    if dropped_by_kind:
        out.append("dropped by kind:")
        for kind in sorted(dropped_by_kind):  # type: ignore[union-attr]
            out.append(f"  {kind}  ×{dropped_by_kind[kind]}")  # type: ignore[index]
    out.append("")
    table = render_percentiles(histograms)
    if table:
        out.extend(table)
    else:
        out.append("latency (ms):")
        out.append("  (no histograms recorded)")
    gauges = snapshot.get("gauges") or {}
    if gauges:
        out.append("")
        out.append("gauges:")
        width = max(len(name) for name in gauges)  # type: ignore[arg-type]
        for name in sorted(gauges):  # type: ignore[union-attr]
            g = gauges[name]  # type: ignore[index]
            out.append(f"  {name.ljust(width)}  last {g['last']:g}  "
                       f"min {g['min']:g}  max {g['max']:g}  "
                       f"({g['updates']} update(s))")
    return "\n".join(out)


def render_metrics_diff(base: dict[str, object], cur: dict[str, object],
                        count_threshold: float = 0.10,
                        latency_threshold: float | None = None,
                        latency_floor: float = 0.001,
                        strict: bool = False) -> tuple[str, bool]:
    """The ``repro metrics diff`` table; returns ``(text, gate_failed)``.

    Two gates, independently armed:

    * **counts** — per-histogram observation counts (deterministic for
      a fixed workload: one observation per span).  A count growing
      past ``base * (1 + count_threshold)`` fails; under ``strict``,
      histograms appearing or vanishing fail too.  This is the CI
      gate.
    * **latency** — p50/p99 regressions, armed only when
      ``latency_threshold`` is given (wall-clock percentiles are
      machine- and load-dependent, so CI should not gate on them by
      default).  A percentile fails when it grew past
      ``base * (1 + latency_threshold)`` *and* past the absolute
      ``latency_floor`` seconds — microsecond jitter on a fast stage
      is never a regression.
    """
    from repro.obs.analyze import diff_counts, regressions

    base_h = {name: Histogram.from_json(payload) for name, payload
              in (base.get("histograms") or {}).items()}  # type: ignore[union-attr]
    cur_h = {name: Histogram.from_json(payload) for name, payload
             in (cur.get("histograms") or {}).items()}  # type: ignore[union-attr]
    deltas = diff_counts({k: h.count for k, h in base_h.items()},
                         {k: h.count for k, h in cur_h.items()})
    failing = {d.kind for d in regressions(deltas, count_threshold, strict)}
    out: list[str] = []
    out.append(f"metrics diff — count threshold {count_threshold:.0%}"
               + (f", latency threshold {latency_threshold:.0%}"
                  if latency_threshold is not None else "")
               + (", strict" if strict else ""))
    if not deltas:
        out.append("  (no histograms on either side)")
        return "\n".join(out), False
    width = max(len(d.kind) for d in deltas)
    out.append(f"  {'histogram'.ljust(width)}  {'base':>8}  {'cur':>8}  "
               f"{'delta':>8}  status")
    for d in deltas:
        flag = " <-- FAIL" if d.kind in failing else ""
        out.append(f"  {d.kind.ljust(width)}  {d.base:>8}  {d.cur:>8}  "
                   f"{d.delta:>+8}  {d.status(count_threshold)}{flag}")
    latency_failing: list[str] = []
    shared = sorted(set(base_h) & set(cur_h))
    if shared:
        out.append("")
        out.append(f"  {'histogram'.ljust(width)}  "
                   f"{'base p50':>10}  {'cur p50':>10}  "
                   f"{'base p99':>10}  {'cur p99':>10}  status")
        for name in shared:
            b, c = base_h[name], cur_h[name]
            if not b.count or not c.count:
                continue
            status, flag = "ok", ""
            if latency_threshold is not None:
                for q in (0.5, 0.99):
                    bq, cq = b.percentile(q), c.percentile(q)
                    if cq > bq * (1.0 + latency_threshold) \
                            and cq > latency_floor:
                        status = f"p{int(q * 100)} regressed"
                        flag = " <-- FAIL"
                        latency_failing.append(name)
                        break
            out.append(
                f"  {name.ljust(width)}  "
                f"{_fmt_ms(b.percentile(0.5)):>10}  "
                f"{_fmt_ms(c.percentile(0.5)):>10}  "
                f"{_fmt_ms(b.percentile(0.99)):>10}  "
                f"{_fmt_ms(c.percentile(0.99)):>10}  {status}{flag}")
    failed = bool(failing) or bool(latency_failing)
    if failed:
        out.append(f"  {len(failing) + len(set(latency_failing))} "
                   f"histogram(s) breach the gate")
    else:
        out.append("  within threshold")
    return "\n".join(out), failed


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def render_prometheus(snapshot: dict[str, object],
                      prefix: str = "repro") -> str:
    """Prometheus text exposition (v0.0.4) of a ``metrics1`` snapshot.

    Counters become ``<prefix>_events_total{kind="..."}``; gauges
    ``<prefix>_gauge{name="..."}``; histograms the standard cumulative
    ``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple under
    ``<prefix>_latency_seconds`` with the span kind as the ``op``
    label.  Scrape-ready for a future ``repro serve /metrics``
    endpoint; also useful offline via ``repro metrics report
    --prometheus``.
    """
    lines: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append(f"# HELP {prefix}_events_total Trace events and "
                     f"bookkeeping counters.")
        lines.append(f"# TYPE {prefix}_events_total counter")
        for name in sorted(counters):  # type: ignore[union-attr]
            lines.append(f'{prefix}_events_total'
                         f'{{kind="{_prom_escape(name)}"}} '
                         f'{counters[name]}')  # type: ignore[index]
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append(f"# HELP {prefix}_gauge Last-value instruments "
                     f"(cache occupancy, budget headroom).")
        lines.append(f"# TYPE {prefix}_gauge gauge")
        for name in sorted(gauges):  # type: ignore[union-attr]
            lines.append(f'{prefix}_gauge{{name="{_prom_escape(name)}"}} '
                         f'{gauges[name]["last"]:g}')  # type: ignore[index]
    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append(f"# HELP {prefix}_latency_seconds Span latency "
                     f"distributions per kind.")
        lines.append(f"# TYPE {prefix}_latency_seconds histogram")
        for name in sorted(histograms):  # type: ignore[union-attr]
            h = Histogram.from_json(histograms[name])  # type: ignore[index]
            label = _prom_escape(name)
            cumulative = 0
            for index in sorted(h.buckets):
                cumulative += h.buckets[index]
                lines.append(
                    f'{prefix}_latency_seconds_bucket{{op="{label}",'
                    f'le="{bucket_bound(index):.9g}"}} {cumulative}')
            lines.append(f'{prefix}_latency_seconds_bucket{{op="{label}",'
                         f'le="+Inf"}} {h.count}')
            lines.append(f'{prefix}_latency_seconds_sum{{op="{label}"}} '
                         f'{h.sum:.9g}')
            lines.append(f'{prefix}_latency_seconds_count{{op="{label}"}} '
                         f'{h.count}')
    return "\n".join(lines) + ("\n" if lines else "")
