"""Profiling hooks: deterministic cProfile scoped like a collector.

The observability layer answers *what happened and how often*; the
profiler answers *where the interpreter spent its time* when a counter
looks suspicious.  Both wrap the same ``with`` idiom so a benchmark can
nest them:

.. code-block:: python

    with collecting() as col, profiled() as prof:
        Interpreter().eval(program)
    print(prof.report(limit=10))
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


class ProfileSession:
    """A finished (or in-flight) cProfile run with report helpers."""

    def __init__(self) -> None:
        self.profile = cProfile.Profile()

    def report(self, sort: str = "cumulative", limit: int = 25) -> str:
        """A plain-text pstats report of the top ``limit`` entries."""
        buffer = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()

    def dump(self, path: str | Path) -> None:
        """Write raw pstats data (loadable with :mod:`pstats`)."""
        self.profile.dump_stats(str(path))


@contextmanager
def profiled() -> Iterator[ProfileSession]:
    """Profile the block; the yielded session outlives it for reports."""
    session = ProfileSession()
    session.profile.enable()
    try:
        yield session
    finally:
        session.profile.disable()
