"""The ``repro serve`` link server.

A persistent process over the content-addressed stores: an asyncio
daemon (:mod:`repro.serve.server`) accepts compile/check/link/run
requests over a newline-delimited-JSON socket protocol
(:mod:`repro.serve.protocol`), executes each in a worker thread under
its own budget and telemetry scope (:mod:`repro.serve.handlers`), and
shares one long-lived, concurrency-safe
:class:`repro.units.cache.CacheStore` across requests.  With
``--processes N`` execution moves into a pool of spawned worker
processes (:mod:`repro.serve.workers`) that share warm state through
the disk cache tier and report per-request ``metrics1`` fragments the
parent merges.  :mod:`repro.serve.chaos` is the fault-injection layer
the robustness story is proven against; :mod:`repro.serve.client` is
the scripting client; :mod:`repro.serve.loadgen` is the ``repro bench
--serve`` load generator.  See ``docs/SERVING.md``.

This package ``__init__`` stays import-light on purpose: the unit-core
modules (``units/cache.py``, ``dynlink/archive.py``,
``units/reduce.py``) import :mod:`repro.serve.chaos` for their guarded
fault hooks, so pulling the asyncio server machinery in here would
put an event loop import on every CLI invocation's path.
"""
