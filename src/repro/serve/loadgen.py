"""The ``repro bench --serve`` load generator.

Measures the link server the way a client feels it: end-to-end
request latency over the socket, cold (store flushed before every
request) versus warm (the shared store primed), plus sustained
concurrent throughput.  Results merge into ``BENCH_results.json``
under a ``"serve"`` key (thread mode) or ``"serve-processes"``
(``processes=N``) so the serving numbers live next to the pipeline
benches they explain.

Every row records its worker configuration — ``mode``
(``threads``/``processes``), ``workers``, ``processes``, and the
host's ``cpus`` — so throughput numbers are attributable: a
multi-process row can only beat the GIL ceiling when ``cpus`` gives
it cores to scale onto.

Latency percentiles are computed exactly (sorted samples), not from
histogram buckets — the sample counts are small enough that bucket
quantization would dominate the p99.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread


def _percentile(samples: list[float], q: float) -> float:
    xs = sorted(samples)
    index = min(len(xs) - 1, max(0, round(q * (len(xs) - 1))))
    return xs[index]


def _summary(samples: list[float]) -> dict[str, float]:
    return {
        "count": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
    }


def _timed_request(client: ServeClient,
                   fields: dict[str, object]) -> float:
    t = time.perf_counter()
    response = client.request(**fields)
    elapsed = time.perf_counter() - t
    if response.get("status") != "ok":
        raise RuntimeError(f"bench request failed: {response}")
    return elapsed


def run_serve_bench(quick: bool = False,
                    out: str | Path = "BENCH_results.json",
                    processes: int = 0) -> dict[str, object]:
    """Drive an in-process server; return (and merge) the results.

    Cases are the bench corpus's sharing/chain programs.  ``cold``
    sends ``flush`` before each timed ``run`` request, so every
    request re-parses, re-checks, re-links, and re-generates code;
    ``warm`` repeats the identical request against the primed store.
    ``throughput`` hammers the warm server from 8 concurrent
    connections and reports requests/second plus the latency
    distribution under that contention.

    ``processes=N`` benches the multi-process server instead (no disk
    tier in either mode, so cold means a genuine recompute for both);
    its row merges under ``"serve-processes"`` so the two modes sit
    side by side.
    """
    from repro.bench import chain_program, sharing_program
    from repro.lang.pretty import show
    from repro.limits import python_recursion_headroom

    cold_repeats = 2 if quick else 3
    warm_repeats = 8 if quick else 20
    clients = 4 if quick else 8
    per_client = 5 if quick else 15

    with python_recursion_headroom(40000):
        cases = {
            ("serve-sharing-016" if quick else "serve-sharing-032"):
                show(sharing_program(16 if quick else 32)),
            ("serve-chain-032" if quick else "serve-chain-064"):
                show(chain_program(32 if quick else 64)),
        }
        config = ServeConfig(workers=4, processes=processes,
                             queue_limit=clients * per_client,
                             default_deadline_s=120.0,
                             max_deadline_s=300.0)
        results: dict[str, object] = {}
        with ServerThread(config) as st:
            for name, source in cases.items():
                fields = {"op": "run", "source": source,
                          "backend": "pycode"}
                with ServeClient(st.host, st.port,
                                 timeout_s=300.0) as client:
                    cold = []
                    for _ in range(cold_repeats):
                        client.request("flush")
                        cold.append(_timed_request(client, fields))
                    warm = [_timed_request(client, fields)
                            for _ in range(warm_repeats)]
                case = {
                    "cold": _summary(cold),
                    "warm": _summary(warm),
                    "p50_speedup": round(
                        _percentile(cold, 0.50)
                        / max(_percentile(warm, 0.50), 1e-9), 1),
                }
                results[name] = case

            # Throughput: concurrent clients over the warm store,
            # smallest case (contention, not single-request cost).
            source = next(iter(cases.values()))
            fields = {"op": "run", "source": source,
                      "backend": "pycode"}
            latencies: list[float] = []
            lock = threading.Lock()

            def worker() -> None:
                with ServeClient(st.host, st.port,
                                 timeout_s=300.0) as client:
                    mine = [_timed_request(client, fields)
                            for _ in range(per_client)]
                with lock:
                    latencies.extend(mine)

            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            t_wall = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - t_wall
            total = clients * per_client
            mode = "processes" if processes else "threads"
            throughput = dict(_summary(latencies))
            throughput.update({
                "clients": clients,
                "requests": total,
                "wall_s": round(wall, 3),
                "rps": round(total / wall, 1),
                "mode": mode,
                "workers": config.pool_size,
            })

    payload = {
        "schema": "serve-bench1",
        "quick": quick,
        "mode": mode,
        "workers": config.pool_size,
        "processes": processes,
        "cpus": os.cpu_count(),
        "cases": results,
        "throughput": throughput,
    }
    out = Path(out)
    merged: dict[str, object] = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text(encoding="utf-8"))
        except ValueError:
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["serve-processes" if processes else "serve"] = payload
    out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    for name, case in results.items():
        print(f"{name}: cold p50 {case['cold']['p50_ms']}ms -> warm "
              f"p50 {case['warm']['p50_ms']}ms "
              f"({case['p50_speedup']}x); "
              f"p99 warm {case['warm']['p99_ms']}ms")
    print(f"throughput: {throughput['rps']} req/s over "
          f"{throughput['clients']} clients "
          f"[{mode}, {config.pool_size} workers, "
          f"{os.cpu_count()} cpu(s)] "
          f"(p50 {throughput['p50_ms']}ms, p99 {throughput['p99_ms']}ms)")
    return payload
