"""Per-request execution for the link server.

:func:`execute_request` is the worker-thread entry point: it rebuilds
the request's entire dynamic context from scratch — contextvars do
**not** propagate into executor threads, so everything scope-based
must be re-entered here, which is exactly what makes requests
isolated:

* a fresh collector under ``registry.scope()``, so N concurrent
  traced requests yield disjoint span trees that flush into one
  coherent registry snapshot (the ``metrics`` op reads it);
* the server's shared :class:`~repro.units.cache.CacheStore` via
  :func:`~repro.units.cache.cache_store_scope` — the one piece of
  state requests *do* share, which is why it is the lock-protected
  one;
* the request's chaos plan (if any, and only when the server allows
  it), armed for this thread only;
* a fresh :class:`~repro.limits.Budget` with the request's wall-clock
  deadline and step caps, so one runaway request exhausts its own
  allowance and nothing else.

Failures follow the batch taxonomy: ``LangError`` (including
``BudgetExceeded``), ``RecursionError``, and ``OSError`` become
structured ``error`` responses (:func:`repro.serve.protocol
.error_response`, exit-code field included); anything else is a
server bug and propagates to the server's last-resort handler.

Stage boundaries poll the deadline explicitly
(``budget.check_deadline()``), so a request stalled by a slow source
or chaos fault converts to a deterministic ``deadline`` exhaustion at
the next boundary instead of running arbitrarily long.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, nullcontext
from typing import TYPE_CHECKING

from repro import limits as _limits
from repro.batch import RECORDED_ERRORS, _archive_roundtrip, _eval_stage
from repro.lang.parser import parse_script
from repro.lang.values import to_write_string
from repro.serve import chaos as _chaos
from repro.serve import protocol as _protocol
from repro.units import cache as _ucache
from repro.units.check import check_program

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry
    from repro.serve.server import ServeConfig


def request_budget(req: dict[str, object],
                   config: "ServeConfig") -> _limits.Budget:
    """The request's own budget: its deadline (clamped to the server's
    ceiling, defaulted from config) plus optional step caps."""
    deadline = req.get("deadline_s")
    if deadline is None:
        deadline = config.default_deadline_s
    if config.max_deadline_s is not None:
        deadline = min(float(deadline), config.max_deadline_s)
    return _limits.Budget(
        deadline_s=deadline,
        eval_steps=req.get("eval_steps"),
        machine_steps=req.get("machine_steps"),
        max_depth=10_000)


def execute_request(req: dict[str, object], store: _ucache.CacheStore,
                    registry: "MetricsRegistry",
                    config: "ServeConfig") -> dict[str, object]:
    """Run one validated pipeline request; always returns a response."""
    request_id = req.get("id")
    budget = request_budget(req, config)
    timings: dict[str, float] = {}
    t_start = time.perf_counter()
    with registry.scope() as col:
        with col.span("serve.request", {"op": req["op"]}) as sp:
            chaos_ctx = nullcontext()
            if req.get("chaos") and config.allow_chaos:
                chaos_ctx = _chaos.chaos_scope(_chaos.ChaosPlan(
                    faults=frozenset(req["chaos"]),
                    slow_s=req["chaos_slow_s"]))
            try:
                with ExitStack() as stack:
                    stack.enter_context(_ucache.cache_store_scope(store))
                    stack.enter_context(chaos_ctx)
                    stack.enter_context(_limits.budget_scope(budget))
                    # Inert everywhere except a marked worker process
                    # (repro.serve.workers), where it kills the worker
                    # mid-request with no response — the pool's
                    # reap/respawn path is the subject under test.
                    if _chaos._armed:
                        _chaos.worker_kill("serve.request")
                    value, output = _dispatch(req, budget, timings)
            except RECORDED_ERRORS as err:
                sp.annotate(status="error",
                            error=type(err).__name__)
                response = _protocol.error_response(request_id, err)
            else:
                sp.annotate(status="ok")
                response = _protocol.ok_response(
                    request_id, value=value, output=output)
            timings["total"] = time.perf_counter() - t_start
            response["op"] = req["op"]
            response["timings"] = {name: round(seconds, 6)
                                   for name, seconds in timings.items()}
            response["spent"] = budget.spent()
            return response


def _dispatch(req: dict[str, object], budget: _limits.Budget,
              timings: dict[str, float]) -> tuple[str, str]:
    """Parse/check/(link|run) under the already-entered scopes."""
    op = req["op"]
    t = time.perf_counter()
    # Warm requests re-send the same source text, so parse through the
    # content-addressed parse store (keyed on the full text, origin
    # prepended exactly as the archive layer does).
    source = req["source"]
    origin = req["origin"]
    expr = _ucache.cached_parse(
        origin + "\x00" + source,
        lambda: parse_script(source, origin=origin))
    timings["parse"] = time.perf_counter() - t
    budget.check_deadline()
    t = time.perf_counter()
    check_program(expr, strict_valuable=not req["lenient"])
    timings["check"] = time.perf_counter() - t
    budget.check_deadline()
    if op == "check":
        return "ok", ""
    if op == "link":
        from repro.lang.pretty import show
        from repro.units.linker import link_and_optimize

        t = time.perf_counter()
        linked, _stats = link_and_optimize(expr)
        timings["link"] = time.perf_counter() - t
        return show(linked), ""
    # op == "run": optional archive round-trip (the dynamic-linking
    # surface the slow-load/poison faults target), then evaluate.
    if req["archive"]:
        t = time.perf_counter()
        _archive_roundtrip(expr, req["origin"], req["retries"])
        timings["archive"] = time.perf_counter() - t
        budget.check_deadline()
    t = time.perf_counter()
    value, output = _eval_stage(expr, req["backend"])
    timings["eval"] = time.perf_counter() - t
    return to_write_string(value), output
