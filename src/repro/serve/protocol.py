"""The ``serve1`` wire protocol: newline-delimited JSON over a socket.

One request per line, one response per line.  A request is a JSON
object with an ``op`` and (for the pipeline ops) a ``source`` program;
a response echoes the request's ``id`` and carries a ``status``:

* ``ok`` — the request ran; ``value`` (and ``output`` for ``run``)
  hold the result, ``timings`` the per-stage seconds, ``spent`` the
  budget consumption;
* ``error`` — the request failed in a *typed* way; ``error`` is the
  same structured payload ``repro batch`` records
  (:func:`repro.batch.error_payload`) plus a ``code`` mirroring the
  CLI exit taxonomy (3 for budget exhaustion, 1 for everything else),
  so a scripted client can branch exactly as it would on exit codes;
* ``overloaded`` — admission control shed the request *before*
  queueing it (the fast-failure alternative to unbounded latency);
  retry against a less-busy server;
* ``shutting-down`` — the server is draining after SIGTERM; in-flight
  requests finish, new ones are rejected with this status.

Ops: ``ping`` (liveness), ``metrics`` (one coherent ``metrics1``
snapshot of the whole process under ``"metrics"``), ``stats`` (cache
store occupancy), ``flush`` (drop the shared store's memory tiers),
``invalidate`` (drop everything derived from one ``tk1`` ``digest``),
``check`` / ``link`` / ``run`` (the pipeline, executed in a worker
thread under the request's own budget — see
:mod:`repro.serve.handlers`).

Budgets ride the request: ``deadline_s`` (clamped to the server's
maximum), ``eval_steps``, ``machine_steps``.  A request may also carry
``chaos`` (a list of :data:`repro.serve.chaos.FAULTS` names) when the
server was started with ``--allow-chaos`` — the faults arm for that
request's dynamic extent only, which is how the chaos sweep injects a
failure into one request while asserting its neighbours stay healthy.
"""

from __future__ import annotations

from typing import Mapping

from repro.batch import error_payload
from repro.limits import BudgetExceeded
from repro.serve.chaos import FAULTS

SCHEMA = "serve1"

#: Ops executed in a worker thread under a per-request budget.
PIPELINE_OPS = ("check", "link", "run")

#: Ops the event loop answers inline (cheap, no budget needed).
CONTROL_OPS = ("ping", "metrics", "stats", "flush", "invalidate")

OPS = PIPELINE_OPS + CONTROL_OPS

BACKENDS = ("interp", "machine", "pycode")


class ProtocolError(ValueError):
    """A request that cannot be executed as asked."""


def validate_request(obj: object) -> dict[str, object]:
    """Normalize one decoded request line; raises :class:`ProtocolError`.

    Returns a dict with every field present and typed: ``id``, ``op``,
    and — for pipeline ops — ``source``, ``backend``, ``lenient``,
    ``archive``, ``retries``, ``deadline_s``, ``eval_steps``,
    ``machine_steps``, ``chaos``, ``chaos_slow_s``.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    req: dict[str, object] = {"id": obj.get("id"), "op": op}
    if op == "invalidate":
        digest = obj.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ProtocolError("invalidate needs a non-empty 'digest'")
        req["digest"] = digest
        return req
    if op not in PIPELINE_OPS:
        return req
    source = obj.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError(f"op {op!r} needs a non-empty 'source'")
    req["source"] = source
    backend = obj.get("backend", "pycode")
    if backend not in BACKENDS:
        raise ProtocolError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})")
    req["backend"] = backend
    req["lenient"] = bool(obj.get("lenient", False))
    req["archive"] = bool(obj.get("archive", False))
    req["origin"] = str(obj.get("origin", "<request>"))
    for field, default in (("retries", 0), ("eval_steps", None),
                           ("machine_steps", None)):
        value = obj.get(field, default)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)
                                  or value < 0):
            raise ProtocolError(f"{field!r} must be a non-negative int")
        req[field] = value
    deadline = obj.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise ProtocolError("'deadline_s' must be a positive number")
        deadline = float(deadline)
    req["deadline_s"] = deadline
    chaos = obj.get("chaos", [])
    if not isinstance(chaos, (list, tuple)) \
            or not all(isinstance(f, str) for f in chaos):
        raise ProtocolError("'chaos' must be a list of fault names")
    unknown = set(chaos) - set(FAULTS)
    if unknown:
        raise ProtocolError(f"unknown chaos faults: {sorted(unknown)}")
    req["chaos"] = tuple(chaos)
    slow_s = obj.get("chaos_slow_s", 0.05)
    if not isinstance(slow_s, (int, float)) or isinstance(slow_s, bool) \
            or slow_s < 0:
        raise ProtocolError("'chaos_slow_s' must be a non-negative number")
    req["chaos_slow_s"] = float(slow_s)
    return req


# ---------------------------------------------------------------------------
# Response constructors (every wire response goes through one of these)
# ---------------------------------------------------------------------------


def _base(request_id: object, status: str) -> dict[str, object]:
    return {"schema": SCHEMA, "id": request_id, "status": status}


def ok_response(request_id: object,
                **fields: object) -> dict[str, object]:
    out = _base(request_id, "ok")
    out.update(fields)
    return out


def error_response(request_id: object, err: BaseException,
                   **fields: object) -> dict[str, object]:
    """A typed failure, carrying the batch error payload + exit code."""
    out = _base(request_id, "error")
    payload = error_payload(err)
    payload["code"] = 3 if isinstance(err, BudgetExceeded) else 1
    out["error"] = payload
    out.update(fields)
    return out


def bad_request_response(request_id: object,
                         message: str) -> dict[str, object]:
    out = _base(request_id, "error")
    out["error"] = {"type": "ProtocolError", "message": message,
                    "code": 1}
    return out


def overloaded_response(request_id: object) -> dict[str, object]:
    return _base(request_id, "overloaded")


def shutting_down_response(request_id: object) -> dict[str, object]:
    return _base(request_id, "shutting-down")
