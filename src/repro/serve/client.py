"""A synchronous client for the ``serve1`` protocol.

:class:`ServeClient` is deliberately tiny — a socket, a buffered
line reader, JSON in and out — so scripts, tests, and the load
generator can talk to a server without touching asyncio.  One client
holds one connection and keeps one request in flight; for concurrency,
open one client per thread (connections are cheap, and the server
pipelines across connections anyway).

``repro client`` is the command-line face: one request per
invocation, response JSON on stdout, and an exit code following the
response status (0 for ``ok``, 3 for a budget-exhaustion error, 1
for any other error, 2 for ``overloaded``/``shutting-down`` — the
retryable statuses get their own code so scripts can distinguish
"try later" from "your program is wrong").
"""

from __future__ import annotations

import json
import socket
from pathlib import Path


class ServeError(RuntimeError):
    """The transport failed (connection refused, dropped, bad frame)."""


class ServeClient:
    """One connection, one request in flight at a time."""

    def __init__(self, host: str, port: int, *,
                 timeout_s: float | None = 60.0):
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        except OSError as err:
            raise ServeError(
                f"cannot connect to {host}:{port}: {err}") from err
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def request(self, op: str, **fields: object) -> dict[str, object]:
        """Send one request; block for its response."""
        self._next_id += 1
        payload: dict[str, object] = {"id": self._next_id, "op": op}
        payload.update(fields)
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        try:
            self._file.write(line.encode("utf-8"))
            self._file.flush()
            raw = self._file.readline()
        except OSError as err:
            raise ServeError(f"connection lost: {err}") from err
        if not raw:
            raise ServeError("server closed the connection")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise ServeError(f"bad response frame: {err}") from err
        if not isinstance(response, dict):
            raise ServeError("response is not a JSON object")
        return response

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_port_file(path: str | Path, *,
                   timeout_s: float = 10.0) -> int:
    """Poll a ``--port-file`` until the server has written its port."""
    import time

    deadline = time.monotonic() + timeout_s
    path = Path(path)
    while True:
        try:
            text = path.read_text().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        if time.monotonic() > deadline:
            raise ServeError(f"no port in {path} after {timeout_s}s")
        time.sleep(0.02)


def exit_code_for(response: dict[str, object]) -> int:
    """Map a response to the CLI exit taxonomy."""
    status = response.get("status")
    if status == "ok":
        return 0
    if status in ("overloaded", "shutting-down"):
        return 2
    error = response.get("error")
    if isinstance(error, dict):
        code = error.get("code")
        if isinstance(code, int):
            return code
    return 1
