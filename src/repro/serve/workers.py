"""The multi-process worker pool behind ``repro serve --processes N``.

The thread-mode server executes every request in one Python process,
so pipeline throughput is pinned by the GIL no matter how many worker
threads run.  This module moves execution into *worker processes*: the
asyncio acceptor and all admission state stay in the parent, and each
pipeline request is shipped to a spawned worker over a private
:class:`multiprocessing.connection.Connection` pair.

Design decisions, in order of importance:

* **Spawn, never fork.**  Workers are started with the ``spawn``
  context, so each bootstraps a clean interpreter and imports the
  pipeline fresh — no inherited locks, no forked event loop, no
  accidentally shared contextvars.  The worker entry point
  (:func:`_worker_main`) builds its *own* per-process
  :class:`~repro.units.cache.CacheStore` (via
  :meth:`~repro.units.cache.CacheStore.for_worker`) and its own
  :class:`~repro.obs.metrics.MetricsRegistry`; the only state workers
  share is the disk cache tier, whose content-addressed keys and
  atomic tmp+``os.replace`` writes are already process-safe.
* **One pipe per worker, one request in flight per worker.**  The
  parent always knows exactly which request a dead worker was holding,
  so crash attribution is exact — no poisoned shared queue to drain,
  no ambiguity about which requests to requeue.
* **Metrics ride the response.**  Each request executes under the
  worker registry's scope; afterwards the worker *drains* the registry
  (:meth:`~repro.obs.metrics.MetricsRegistry.drain`) and sends the
  ``metrics1`` fragment back alongside the response envelope.  The
  parent folds fragments in with ``merge_snapshot`` — merging is
  associative and order-independent (property-tested across a real
  process boundary in ``tests/test_serve_envelope_properties.py``), so
  racing workers still produce one coherent parent snapshot.
* **Worker death is a handled event, not a server crash.**  A worker
  that dies mid-request (segfault, OOM kill, the ``worker-kill`` chaos
  fault) surfaces as ``EOFError``/``OSError`` on its pipe.  The parent
  reaps it, spawns a replacement, and either *requeues* the request
  once on a fresh worker (a healthy request that was collateral
  damage) or *fails* it with a typed :class:`WorkerCrashed` error in
  the ``batch1`` taxonomy (a request that already killed a worker, or
  one that asked to via chaos).  Deaths and respawns are counted
  (``serve.worker_deaths`` / ``serve.worker_respawns`` /
  ``serve.requeued``) and reported by the ``stats`` op.

Control ops (``flush`` / ``invalidate`` / ``stats``) broadcast to
every worker between requests: :meth:`WorkerPool.broadcast` collects
each worker from the idle queue (waiting for in-flight work to
finish), runs the op, and returns the per-worker results the server
aggregates.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
from typing import TYPE_CHECKING

from repro.serve import protocol as _protocol

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.server import ServeConfig

#: Message tags on the parent->worker pipe.
_REQ, _CTL, _EXIT = "req", "ctl", "exit"

#: How long to wait for a spawned worker's ready handshake.
_SPAWN_TIMEOUT_S = 120.0

#: How long a dispatch thread waits for an idle worker before giving
#: up (admission control normally makes the wait instantaneous; this
#: bound only matters when the pool is degraded by failed respawns).
_ACQUIRE_TIMEOUT_S = 120.0


class WorkerCrashed(RuntimeError):
    """A worker process died (crash, SIGKILL, OOM) holding a request.

    Carried to the client through the standard ``batch1`` error
    payload (``type: "WorkerCrashed"``, exit-code field 1), so
    scripted clients branch on it exactly as on any other typed
    failure.
    """


def _worker_main(conn, config: "ServeConfig") -> None:
    """The worker process body: bootstrap once, serve jobs forever.

    Runs in a *spawned* child — everything here is this process's own:
    the cache store (disk tier shared with siblings by content
    address only), the metrics registry, the chaos arming state.
    """
    import signal

    # The parent owns lifecycle: drain is a pipe message, never a
    # keyboard interrupt racing a half-written response.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.obs.metrics import MetricsRegistry
    from repro.serve import chaos as _chaos
    from repro.serve.handlers import execute_request
    from repro.units.cache import CacheStore

    _chaos.mark_worker_process()
    store = CacheStore.for_worker(config.cache_dir, ttl_s=config.ttl_s)
    registry = MetricsRegistry()
    conn.send(("ready", os.getpid()))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == _EXIT:
            break
        if msg[0] == _CTL:
            op, arg = msg[1], msg[2]
            if op == "flush":
                store.clear()
                result: object = "flushed"
            elif op == "invalidate":
                result = store.invalidate(arg)
            else:  # op == "stats"
                result = {"pid": os.getpid(),
                          "occupancy": store.occupancy()}
            conn.send(("ok", result))
            continue
        req = msg[1]
        try:
            response = execute_request(req, store, registry, config)
        except Exception as err:  # a server bug, not a request failure
            registry.count("serve.internal_error")
            response = _protocol.error_response(req.get("id"), err)
        response["worker"] = os.getpid()
        conn.send(("ok", (response, registry.drain())))
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side handle: the process plus its private pipe."""

    __slots__ = ("process", "conn", "pid")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.pid = process.pid


class WorkerPool:
    """``processes`` spawned workers behind an idle queue.

    Thread-safe from the server's dispatch executor: ``submit`` runs
    in up to ``processes`` dispatch threads at once (one blocked on
    each worker's pipe), ``broadcast`` serializes control ops, and
    death/respawn bookkeeping happens under one lock.
    """

    def __init__(self, config: "ServeConfig",
                 registry: "MetricsRegistry"):
        self.config = config
        self.registry = registry
        self.size = config.processes
        self._ctx = mp.get_context("spawn")
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._lock = threading.Lock()
        self._broadcast_lock = threading.Lock()
        self._live: dict[int, _Worker] = {}
        self._closed = False
        self.deaths = 0
        self.respawns = 0
        # Start every process first, then collect the handshakes, so
        # the spawns overlap instead of serializing their imports.
        started = [self._spawn() for _ in range(self.size)]
        for worker in started:
            self._await_ready(worker)
            self._idle.put(worker)

    # -- spawning and reaping -------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.config),
            name="repro-serve-worker", daemon=True)
        process.start()
        # Close our copy of the child end, or a dead worker would
        # never surface as EOF on the parent end.
        child_conn.close()
        return _Worker(process, parent_conn)

    def _await_ready(self, worker: _Worker) -> None:
        if not worker.conn.poll(_SPAWN_TIMEOUT_S):
            worker.process.kill()
            raise RuntimeError(
                f"worker {worker.pid} never became ready")
        tag, pid = worker.conn.recv()
        assert tag == "ready" and pid == worker.pid
        with self._lock:
            self._live[worker.pid] = worker

    def _reap_and_respawn(self, worker: _Worker) -> "_Worker | None":
        """Bury a dead worker; return its replacement (or ``None``
        while the pool is shutting down)."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=10)
        with self._lock:
            self._live.pop(worker.pid, None)
            self.deaths += 1
            closed = self._closed
        self.registry.count("serve.worker_deaths")
        if closed:
            return None
        replacement = self._spawn()
        self._await_ready(replacement)
        with self._lock:
            self.respawns += 1
        self.registry.count("serve.worker_respawns")
        return replacement

    # -- request dispatch (one dispatch thread per in-flight request) ---

    def submit(self, req: dict[str, object]) -> dict[str, object]:
        """Run one validated request on some worker; always returns a
        response envelope.

        A worker dying mid-request is requeued once onto a fresh
        worker — unless the request *asked* for the kill (the
        ``worker-kill`` chaos fault) or already got its retry, in
        which case it fails with the typed :class:`WorkerCrashed`
        payload.
        """
        request_id = req.get("id")
        requeued = False
        while True:
            worker = self._acquire()
            try:
                worker.conn.send((_REQ, req))
                tag, payload = worker.conn.recv()
            except (EOFError, OSError):
                replacement = self._reap_and_respawn(worker)
                if replacement is not None:
                    self._idle.put(replacement)
                asked_for_it = "worker-kill" in (req.get("chaos") or ())
                if asked_for_it or requeued:
                    return self._crash_response(request_id, worker.pid,
                                                requeued=requeued)
                requeued = True
                self.registry.count("serve.requeued")
                continue
            self._idle.put(worker)
            response, fragment = payload
            self.registry.merge_snapshot(fragment)
            return response

    def _acquire(self) -> _Worker:
        try:
            return self._idle.get(timeout=_ACQUIRE_TIMEOUT_S)
        except queue.Empty:
            raise WorkerCrashed(
                "no worker process became available "
                f"within {_ACQUIRE_TIMEOUT_S:.0f}s") from None

    def _crash_response(self, request_id: object, pid: int | None, *,
                        requeued: bool) -> dict[str, object]:
        detail = " after one requeue" if requeued else ""
        err = WorkerCrashed(
            f"worker process {pid} died executing this request{detail}")
        return _protocol.error_response(request_id, err)

    # -- control-op broadcast -------------------------------------------

    def broadcast(self, op: str, arg: object = None) -> list:
        """Run one control op on every worker; per-worker results.

        Collects each worker from the idle queue (so the op runs
        between requests, never concurrently with one), which also
        means a broadcast naturally waits for in-flight work to
        finish.  Workers found dead are respawned; their result is
        simply absent from the list.
        """
        with self._broadcast_lock:
            held: list[_Worker] = []
            results: list = []
            try:
                for _ in range(self.size):
                    try:
                        held.append(
                            self._idle.get(timeout=_ACQUIRE_TIMEOUT_S))
                    except queue.Empty:
                        break  # degraded pool; act on what we have
                for index, worker in enumerate(list(held)):
                    try:
                        worker.conn.send((_CTL, op, arg))
                        _tag, result = worker.conn.recv()
                        results.append(result)
                    except (EOFError, OSError):
                        replacement = self._reap_and_respawn(worker)
                        if replacement is not None:
                            held[index] = replacement
                        else:
                            held[index] = None  # type: ignore[call-overload]
            finally:
                for worker in held:
                    if worker is not None:
                        self._idle.put(worker)
        return results

    # -- introspection and shutdown -------------------------------------

    def pids(self) -> list[int]:
        with self._lock:
            return sorted(self._live)

    def info(self) -> dict[str, object]:
        """The worker-configuration block of the ``stats`` op."""
        with self._lock:
            return {"mode": "processes", "processes": self.size,
                    "pids": sorted(self._live), "deaths": self.deaths,
                    "respawns": self.respawns}

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every worker (called after the dispatch pool drained,
        so all workers are idle)."""
        with self._lock:
            self._closed = True
        workers: list[_Worker] = []
        while True:
            try:
                workers.append(self._idle.get_nowait())
            except queue.Empty:
                break
        for worker in workers:
            try:
                worker.conn.send((_EXIT,))
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=timeout_s)
            try:
                worker.conn.close()
            except OSError:
                pass
        with self._lock:
            self._live.clear()
