"""The asyncio link-server daemon.

Architecture: one event loop owns the sockets and all admission
state; pipeline requests execute in a bounded worker-thread pool
(:func:`repro.serve.handlers.execute_request` re-enters every scope
inside the thread).  The loop therefore never blocks on unit-language
work, and all mutation of admission counters happens on the loop —
no locks beyond the cache store's own.

With ``processes > 0`` the execution tier moves out-of-process: the
same dispatch threads exist, but each one just ships the validated
request to a spawned worker over a pipe and blocks on the reply
(:class:`repro.serve.workers.WorkerPool`).  The loop-side admission
logic is identical in both modes; control ops that touch per-worker
state (``flush`` / ``invalidate`` / ``stats``) broadcast to the pool
from a dedicated single-thread executor so the loop never blocks on a
pipe.

Robustness properties (chaos-tested; see ``docs/SERVING.md``):

* **Admission control** — at most ``workers`` requests execute while
  ``queue_limit`` more wait; anything beyond that is shed immediately
  with an ``overloaded`` response (bounded queue, bounded latency;
  counted as ``serve.overloaded``).
* **Per-request isolation** — each request runs under its own budget,
  collector scope, and (optional) chaos plan; the only shared state
  is the lock-protected :class:`~repro.units.cache.CacheStore`.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, in-flight
  requests finish, queued-but-unread lines and new requests are
  answered ``shutting-down`` (counted as ``serve.rejected``), then
  the process exits.

Connections are pipelined: a client may send many request lines
without waiting; responses carry the request ``id`` and may complete
out of order (a per-connection write lock keeps the frames intact).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.serve import protocol as _protocol
from repro.serve.handlers import execute_request
from repro.units.cache import CacheStore


@dataclass
class ServeConfig:
    """Everything a server instance needs to know at startup."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced
    workers: int = 4
    queue_limit: int = 16
    processes: int = 0  # 0 = thread mode; N = spawned worker processes
    default_deadline_s: float = 10.0
    max_deadline_s: float | None = 60.0
    cache_dir: str | None = None
    ttl_s: float | None = None
    allow_chaos: bool = False
    port_file: str | None = None

    @property
    def pool_size(self) -> int:
        """Concurrent execution slots (worker processes or threads)."""
        return self.processes if self.processes else self.workers

    @property
    def admission_limit(self) -> int:
        return self.pool_size + self.queue_limit


class LinkServer:
    """One daemon: listener + worker pool + shared cache store."""

    def __init__(self, config: ServeConfig, *,
                 registry: "obs.MetricsRegistry | None" = None,
                 store: CacheStore | None = None):
        self.config = config
        self.registry = registry if registry is not None \
            else obs.MetricsRegistry()
        self.store = store if store is not None else CacheStore(
            config.cache_dir, thread_safe=True, ttl_s=config.ttl_s)
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._workers = None  # WorkerPool in process mode
        self._ctl_pool: ThreadPoolExecutor | None = None
        self._shutdown: asyncio.Event | None = None
        self._inflight: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._active = 0
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "LinkServer":
        self._shutdown = asyncio.Event()
        if self.config.processes:
            # Process mode: the thread pool only *dispatches* (each
            # thread blocks on one worker's pipe), so it is sized to
            # the worker count; control-op broadcasts get their own
            # single thread so they never block the loop.
            from repro.serve.workers import WorkerPool

            self._workers = WorkerPool(self.config, self.registry)
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.processes,
                thread_name_prefix="repro-serve-dispatch")
            self._ctl_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-ctl")
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serve")
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(f"{self.port}\n")
        return self

    def request_shutdown(self) -> None:
        """Begin draining (idempotent; signal handlers land here)."""
        self._draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Run until SIGTERM/SIGINT (or :meth:`request_shutdown`),
        then drain."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Not the main thread (tests) or platform without
                # signal support; request_shutdown still works.
                pass
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, shut the
        pool down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._ctl_pool is not None:
            self._ctl_pool.shutdown(wait=True)
        if self._workers is not None:
            # The dispatch pool drained above, so every worker is idle.
            self._workers.shutdown()
        # Hang up on idle connections so their handler tasks finish
        # before the loop tears down (every response already went out).
        for writer in list(self._writers):
            try:
                writer.close()
            except OSError:
                pass
        await asyncio.sleep(0)

    # -- the connection loop --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock))
                for bag in (tasks, self._inflight):
                    bag.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._inflight.discard)
        finally:
            self._writers.discard(writer)
            # The loop may be tearing down (drain closed this
            # connection); finish cleanup without re-raising the
            # cancellation into asyncio's stream callback.
            try:
                if tasks:
                    await asyncio.gather(*list(tasks),
                                         return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes,
                           writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        request_id: object = None
        try:
            obj = json.loads(line.decode("utf-8"))
            if isinstance(obj, dict):
                request_id = obj.get("id")
            req = _protocol.validate_request(obj)
        except (ValueError, UnicodeDecodeError) as err:
            response = _protocol.bad_request_response(request_id,
                                                      str(err))
            await self._send(writer, write_lock, response)
            return
        response = await self._route(req)
        await self._send(writer, write_lock, response)

    async def _route(self, req: dict[str, object]) -> dict[str, object]:
        request_id = req.get("id")
        if self._draining:
            self.registry.count("serve.rejected")
            return _protocol.shutting_down_response(request_id)
        loop = asyncio.get_running_loop()
        if req["op"] in _protocol.CONTROL_OPS:
            if self._workers is not None and \
                    req["op"] in ("flush", "invalidate", "stats"):
                # These touch per-worker state; the broadcast blocks
                # on pipes, so it runs off-loop.
                return await loop.run_in_executor(
                    self._ctl_pool, self._pool_control, req)
            return self._control(req)
        # Admission: shed instead of queueing unboundedly.
        if self._active >= self.config.admission_limit:
            self.registry.count("serve.overloaded")
            return _protocol.overloaded_response(request_id)
        self._active += 1
        self.registry.count("serve.requests")
        self.registry.gauge("serve.inflight", self._active)
        try:
            if self._workers is not None:
                return await loop.run_in_executor(
                    self._pool, self._workers.submit, req)
            return await loop.run_in_executor(
                self._pool, execute_request, req, self.store,
                self.registry, self.config)
        except Exception as err:  # a server bug, not a request failure
            self.registry.count("serve.internal_error")
            return _protocol.error_response(request_id, err)
        finally:
            self._active -= 1
            self.registry.gauge("serve.inflight", self._active)

    def _control(self, req: dict[str, object]) -> dict[str, object]:
        """Cheap ops the loop answers inline (no budget, no worker)."""
        request_id = req.get("id")
        op = req["op"]
        if op == "ping":
            return _protocol.ok_response(request_id, value="pong")
        if op == "metrics":
            return _protocol.ok_response(
                request_id, metrics=self.registry.snapshot())
        if op == "stats":
            return _protocol.ok_response(
                request_id, occupancy=self.store.occupancy(),
                inflight=self._active,
                workers={"mode": "threads",
                         "workers": self.config.workers})
        if op == "flush":
            self.store.clear()
            return _protocol.ok_response(request_id, value="flushed")
        # op == "invalidate"
        removed = self.store.invalidate(req["digest"])
        return _protocol.ok_response(request_id, removed=removed)

    def _pool_control(self, req: dict[str, object]) -> dict[str, object]:
        """Control ops in process mode: broadcast to every worker
        (runs in the dedicated control thread, never on the loop)."""
        request_id = req.get("id")
        op = req["op"]
        if op == "flush":
            # The parent's store only fronts control ops in this mode,
            # but clear it too so occupancy reads stay truthful.
            self.store.clear()
            self._workers.broadcast("flush")
            return _protocol.ok_response(request_id, value="flushed")
        if op == "invalidate":
            removed = self.store.invalidate(req["digest"])
            removed += sum(int(count) for count in
                           self._workers.broadcast("invalidate",
                                                   req["digest"]))
            return _protocol.ok_response(request_id, removed=removed)
        # op == "stats": per-worker occupancy summed per tier, plus
        # the pool's death/respawn bookkeeping.
        per_worker = self._workers.broadcast("stats")
        occupancy: dict[str, int] = {}
        for entry in per_worker:
            for tier, count in entry["occupancy"].items():
                occupancy[tier] = occupancy.get(tier, 0) + count
        info = self._workers.info()
        info["per_worker"] = per_worker
        return _protocol.ok_response(
            request_id, occupancy=occupancy, inflight=self._active,
            workers=info)

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock,
                    response: dict[str, object]) -> None:
        data = json.dumps(response, separators=(",", ":")) + "\n"
        async with write_lock:
            try:
                writer.write(data.encode("utf-8"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; its request still completed


def run_server(config: ServeConfig) -> int:
    """Blocking entry point for ``repro serve``."""

    async def main() -> None:
        server = LinkServer(config)
        await server.start()
        mode = (f"{config.processes} worker processes"
                if config.processes else
                f"{config.workers} worker threads")
        print(f"serving on {config.host}:{server.port} ({mode})",
              flush=True)
        await server.serve_until_shutdown()
        print("drained", flush=True)

    asyncio.run(main())
    return 0


class ServerThread:
    """An in-process server for tests, the chaos sweep, and the load
    generator: the event loop runs in a daemon thread, the caller gets
    ``host``/``port`` once the listener is bound.

    Use as a context manager; exit requests shutdown and joins through
    the full drain, so in-flight work finishes before the block ends.
    """

    def __init__(self, config: ServeConfig, *,
                 registry: "obs.MetricsRegistry | None" = None,
                 store: CacheStore | None = None):
        self._config = config
        self._registry = registry
        self._store = store
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self.server: LinkServer | None = None
        self.port: int | None = None

    @property
    def host(self) -> str:
        return self._config.host

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread never became ready")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as err:
            self._error = err
            self._ready.set()

    async def _main(self) -> None:
        server = LinkServer(self._config, registry=self._registry,
                            store=self._store)
        await server.start()
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server._shutdown.wait()
        await server.drain()

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=60)
            if self._thread.is_alive():
                raise RuntimeError("server thread failed to drain")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
