"""Fault injection for the link server (and anything else).

The robustness claims in ``docs/SERVING.md`` are proven against this
layer, not asserted: a :class:`ChaosPlan` names the faults to inject
and :func:`chaos_scope` arms them for one dynamic extent — in the
server, for exactly one request's worker thread, which is what makes
"one failing request never degrades a concurrent healthy one" a
testable statement rather than a hope.

Faults (the :data:`FAULTS` vocabulary):

* ``cache-io`` — disk cache-tier reads/writes raise :class:`OSError`,
  exercising the degrade-to-memory-only paths in
  :mod:`repro.units.cache`;
* ``slow-load`` — archive lookups stall for ``slow_s`` seconds,
  exercising per-request deadlines and retry backoff under a slow
  source;
* ``poison`` — archive lookups return an entry whose serialized
  source has been corrupted, exercising the typed failure path at the
  retrieval boundary (and proving the content-addressed parse cache
  cannot be poisoned: the mangled source has a different key);
* ``link-exhaust`` — the compound-merge step raises
  :class:`~repro.limits.BudgetExceeded` before consulting the link
  store, exercising the never-cache-failures discipline mid-link;
* ``worker-kill`` — the executing *worker process* dies instantly via
  ``os._exit`` (no cleanup, no response — indistinguishable from a
  SIGKILL or OOM kill from the parent's side), exercising the pool's
  reap/respawn/requeue path in :mod:`repro.serve.workers`.  The hook
  only fires inside a process that called
  :func:`mark_worker_process`; in the thread-mode server there is no
  process to lose, so the fault is inert by design.

Hook protocol: the core modules guard every call with the module-level
:data:`_armed` counter (``if _chaos._armed: _chaos.cache_io(...)``),
so unarmed processes — every normal CLI run — pay one integer test per
hook site and never enter this module.  The plan itself rides a
:class:`~contextvars.ContextVar`, so arming is per-extent: concurrent
requests in one process see only their own plan.  Each injection
emits a ``serve.chaos`` trace event naming the fault and site.

:func:`run_chaos_sweep` (``repro serve --chaos``) drives an in-process
server through every fault while concurrent healthy requests race it,
asserting the differential acceptance criteria; see that function's
docstring.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from repro.limits import BudgetExceeded
from repro.obs import current as _obs_current

#: Every fault name a plan may carry.
FAULTS = ("cache-io", "slow-load", "poison", "link-exhaust",
          "worker-kill")

#: True only in a serve worker process (set by
#: ``repro.serve.workers._worker_main`` at bootstrap).  The
#: ``worker-kill`` fault consults it so that arming the fault in a
#: thread-mode server — where "the worker" is the whole daemon —
#: cannot take the server down.
_worker_process = False


def mark_worker_process() -> None:
    """Declare this process a serve worker (enables ``worker-kill``)."""
    global _worker_process
    _worker_process = True


@dataclass(frozen=True)
class ChaosPlan:
    """Which faults to inject, and how hard.

    ``faults`` is a subset of :data:`FAULTS`; ``slow_s`` is the stall
    injected per archive lookup under ``slow-load``.
    """

    faults: frozenset = field(default_factory=frozenset)
    slow_s: float = 0.05

    def __post_init__(self) -> None:
        unknown = set(self.faults) - set(FAULTS)
        if unknown:
            raise ValueError(f"unknown chaos faults: {sorted(unknown)}")


_PLAN: ContextVar[ChaosPlan | None] = ContextVar("repro_chaos_plan",
                                                 default=None)

#: Count of armed scopes process-wide.  Core hook sites read this
#: plain global before calling in, so unarmed processes pay one
#: integer test per site.
_armed = 0


def current_plan() -> ChaosPlan | None:
    """The armed plan, or ``None`` outside every :func:`chaos_scope`."""
    if not _armed:
        return None
    return _PLAN.get()


@contextmanager
def chaos_scope(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Arm ``plan`` for the dynamic extent (contextvar-scoped).

    Nests; concurrent extents are independent.  The server enters one
    per chaos-carrying request inside the worker thread, so the blast
    radius of a fault is exactly that request.
    """
    global _armed
    token = _PLAN.set(plan)
    _armed += 1
    try:
        yield plan
    finally:
        _armed -= 1
        _PLAN.reset(token)


def _note(fault: str, site: str) -> None:
    col = _obs_current()
    if col is not None:
        col.emit("serve.chaos", {"fault": fault, "site": site})


# ---------------------------------------------------------------------------
# Hook points, called (guarded) from the core modules
# ---------------------------------------------------------------------------


def cache_io(site: str) -> None:
    """Raise :class:`OSError` at a disk cache-tier touch point."""
    plan = current_plan()
    if plan is not None and "cache-io" in plan.faults:
        _note("cache-io", site)
        raise OSError(f"chaos: injected cache I/O failure at {site}")


def slow_load(site: str) -> None:
    """Stall an archive lookup."""
    plan = current_plan()
    if plan is not None and "slow-load" in plan.faults:
        _note("slow-load", site)
        time.sleep(plan.slow_s)


def poison(site: str, source: str) -> str:
    """Corrupt an archive entry's serialized source on its way out."""
    plan = current_plan()
    if plan is not None and "poison" in plan.faults:
        _note("poison", site)
        return "(unit (import" + source
    return source


def exhaust(site: str) -> None:
    """Trip the budget at a link-stage touch point."""
    plan = current_plan()
    if plan is not None and "link-exhaust" in plan.faults:
        _note("link-exhaust", site)
        raise BudgetExceeded("deadline", 0.0, 0.0)


def worker_kill(site: str) -> None:
    """Die on the spot — but only inside a marked worker process.

    ``os._exit`` skips every ``finally``, ``atexit`` hook, and pipe
    flush, which is the point: from the parent's perspective this is
    exactly a SIGKILL/OOM kill mid-request (EOF on the worker's pipe,
    no response, no metrics fragment).
    """
    plan = current_plan()
    if plan is not None and "worker-kill" in plan.faults \
            and _worker_process:
        _note("worker-kill", site)
        os._exit(43)


# ---------------------------------------------------------------------------
# The sweep (`repro serve --chaos`)
# ---------------------------------------------------------------------------

#: A small archive-friendly program (its invoked unit round-trips the
#: archive, which is where the slow-load and poison faults live).
_GREET = """\
(invoke (unit (import) (export greet)
  (define greet (lambda (who) (string-append "hello, " who)))
  (greet "world")))
"""


def run_chaos_sweep(verbose: bool = True) -> dict[str, object]:
    """Prove per-request isolation under every fault, differentially.

    For each fault in :data:`FAULTS`, an in-process server (chaos
    allowed, shared disk-backed store, 4 workers) receives one
    chaos-carrying request racing three healthy ones.  The sweep
    asserts, per round:

    * the chaos request lands exactly as designed — degraded-but-
      correct for ``cache-io`` (disk tier gone, value still right),
      a structured budget error for ``slow-load`` (deadline) and
      ``link-exhaust``, a typed ``ArchiveError`` for ``poison``;
    * every concurrent healthy request returns byte-identical
      value/output to a fresh one-shot run of the same program
      against a private store (the differential assert);
    * re-sending the chaos request *without* its faults succeeds with
      the expected value — no injected failure poisoned the shared
      store;
    * at the end, the server's registry reports zero dropped trace
      events.

    The first four faults run against a thread-mode server.
    ``worker-kill`` gets its own round against a 2-process server
    (the fault is inert without real worker processes): the killed
    request must come back as a typed ``WorkerCrashed`` error while
    racing healthy requests still match their one-shot values, the
    pool must report the death and the respawn, and a clean re-send
    must succeed on the replacement worker.

    Raises :class:`AssertionError` on any violation; returns a
    summary dict.  Imports are local so this module stays cheap for
    the core hook sites that import it.
    """
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.bench import chain_program, sharing_program
    from repro.lang.pretty import show
    from repro.limits import python_recursion_headroom
    from repro.obs import MetricsRegistry
    from repro.serve.client import ServeClient
    from repro.serve.handlers import execute_request
    from repro.serve.protocol import validate_request
    from repro.serve.server import ServeConfig, ServerThread
    from repro.units.cache import CacheStore

    def one_shot(fields: dict[str, object]) -> dict[str, object]:
        """A fresh private store + registry: one-shot CLI semantics."""
        req = validate_request(dict(fields, deadline_s=60))
        return execute_request(req, CacheStore(), MetricsRegistry(),
                               ServeConfig())

    with python_recursion_headroom(40000):
        healthy_reqs = {
            "sharing-008": {"op": "run", "backend": "pycode",
                            "source": show(sharing_program(8))},
            "chain-016": {"op": "run", "backend": "pycode",
                          "source": show(chain_program(16))},
            "greet": {"op": "run", "backend": "pycode",
                      "source": _GREET, "archive": True},
        }
        expected = {}
        for name, fields in healthy_reqs.items():
            resp = one_shot(fields)
            assert resp["status"] == "ok", \
                f"one-shot {name} failed: {resp}"
            expected[name] = (resp["value"], resp.get("output", ""))

        # Per-fault chaos request + what it must do.  link-exhaust
        # uses the `link` op on its *own* program so the merge is cold
        # (a warm flatten memo would skip the hook site) — and `link`
        # output is gensym-sensitive, so only its status is asserted.
        rounds = {
            "cache-io": {"fields": dict(healthy_reqs["sharing-008"],
                                        chaos=["cache-io"]),
                         "status": "ok",
                         "value": expected["sharing-008"][0]},
            "slow-load": {"fields": dict(healthy_reqs["greet"],
                                         chaos=["slow-load"],
                                         chaos_slow_s=0.5,
                                         deadline_s=0.1),
                          "status": "error",
                          "error_type": "BudgetExceeded"},
            "poison": {"fields": dict(healthy_reqs["greet"],
                                      chaos=["poison"]),
                       "status": "error",
                       "error_type": "ArchiveError"},
            "link-exhaust": {"fields": {"op": "link",
                                        "source":
                                            show(sharing_program(9)),
                                        "chaos": ["link-exhaust"]},
                             "status": "error",
                             "error_type": "BudgetExceeded"},
        }

        summary: dict[str, object] = {}
        registry = MetricsRegistry()
        with tempfile.TemporaryDirectory() as cache_dir:
            config = ServeConfig(workers=4, queue_limit=16,
                                 cache_dir=cache_dir, allow_chaos=True,
                                 default_deadline_s=60.0)
            with ServerThread(config, registry=registry) as st:

                def send(fields: dict[str, object]) -> dict[str, object]:
                    with ServeClient(st.host, st.port) as client:
                        return client.request(**fields)

                for fault, round_spec in rounds.items():
                    jobs = [round_spec["fields"]] \
                        + list(healthy_reqs.values())
                    with ThreadPoolExecutor(len(jobs)) as pool:
                        responses = list(pool.map(send, jobs))
                    chaos_resp = responses[0]
                    assert chaos_resp["status"] == round_spec["status"], \
                        f"{fault}: chaos request got {chaos_resp}"
                    if "error_type" in round_spec:
                        got = chaos_resp["error"]["type"]
                        assert got == round_spec["error_type"], \
                            f"{fault}: expected " \
                            f"{round_spec['error_type']}, got {got}"
                    if "value" in round_spec:
                        assert chaos_resp["value"] == \
                            round_spec["value"], \
                            f"{fault}: degraded value differs"
                    for name, resp in zip(healthy_reqs, responses[1:]):
                        assert resp["status"] == "ok", \
                            f"{fault}: healthy {name} degraded: {resp}"
                        got = (resp["value"], resp.get("output", ""))
                        assert got == expected[name], \
                            f"{fault}: healthy {name} diverged from " \
                            f"one-shot: {got} != {expected[name]}"
                    # The store must not be poisoned: the identical
                    # request, faults removed, succeeds.
                    clean = {k: v for k, v in
                             round_spec["fields"].items()
                             if k not in ("chaos", "chaos_slow_s",
                                          "deadline_s")}
                    after = send(clean)
                    assert after["status"] == "ok", \
                        f"{fault}: post-fault request failed: {after}"
                    if clean["op"] == "run":
                        name = next(n for n, f in healthy_reqs.items()
                                    if f["source"] == clean["source"])
                        got = (after["value"], after.get("output", ""))
                        assert got == expected[name], \
                            f"{fault}: post-fault value diverged"
                    summary[fault] = {
                        "chaos_status": chaos_resp["status"],
                        "healthy_ok": len(healthy_reqs),
                    }
                    if verbose:
                        print(f"chaos {fault}: injected -> "
                              f"{chaos_resp['status']}; "
                              f"{len(healthy_reqs)} healthy requests "
                              f"unaffected; store clean")
        snap = registry.snapshot()
        dropped = snap["counters"].get("trace.dropped", 0)
        assert dropped == 0, f"server dropped {dropped} trace events"

        # Fifth fault: worker-kill needs real worker processes (in a
        # thread-mode server the hook is inert by design), so it gets
        # its own 2-process round.
        kill_registry = MetricsRegistry()
        with tempfile.TemporaryDirectory() as cache_dir:
            config = ServeConfig(processes=2, cache_dir=cache_dir,
                                 allow_chaos=True,
                                 default_deadline_s=60.0)
            with ServerThread(config, registry=kill_registry) as st:

                def send(fields: dict[str, object]) -> dict[str, object]:
                    with ServeClient(st.host, st.port,
                                     timeout_s=120.0) as client:
                        return client.request(**fields)

                kill_fields = dict(healthy_reqs["greet"],
                                   chaos=["worker-kill"])
                jobs = [kill_fields] + list(healthy_reqs.values())
                with ThreadPoolExecutor(len(jobs)) as pool:
                    responses = list(pool.map(send, jobs))
                chaos_resp = responses[0]
                assert chaos_resp["status"] == "error", \
                    f"worker-kill: chaos request got {chaos_resp}"
                got = chaos_resp["error"]["type"]
                assert got == "WorkerCrashed", \
                    f"worker-kill: expected WorkerCrashed, got {got}"
                for name, resp in zip(healthy_reqs, responses[1:]):
                    assert resp["status"] == "ok", \
                        f"worker-kill: healthy {name} degraded: {resp}"
                    got = (resp["value"], resp.get("output", ""))
                    assert got == expected[name], \
                        f"worker-kill: healthy {name} diverged from " \
                        f"one-shot: {got} != {expected[name]}"
                after = send({k: v for k, v in kill_fields.items()
                              if k != "chaos"})
                assert after["status"] == "ok", \
                    f"worker-kill: post-fault request failed: {after}"
                got = (after["value"], after.get("output", ""))
                assert got == expected["greet"], \
                    "worker-kill: post-fault value diverged"
        kill_snap = kill_registry.snapshot()
        deaths = kill_snap["counters"].get("serve.worker_deaths", 0)
        respawns = kill_snap["counters"].get("serve.worker_respawns", 0)
        assert deaths >= 1, "worker-kill: no worker death recorded"
        assert respawns >= 1, "worker-kill: no respawn recorded"
        dropped = kill_snap["counters"].get("trace.dropped", 0)
        assert dropped == 0, \
            f"process server dropped {dropped} trace events"
        summary["worker-kill"] = {"chaos_status": "error",
                                  "healthy_ok": len(healthy_reqs),
                                  "deaths": deaths,
                                  "respawns": respawns}
        if verbose:
            print(f"chaos worker-kill: injected -> WorkerCrashed; "
                  f"{len(healthy_reqs)} healthy requests unaffected; "
                  f"{deaths} death(s), {respawns} respawn(s)")

        summary["dropped"] = 0
        if verbose:
            print(f"chaos sweep ok: {len(FAULTS)} faults, "
                  f"isolation + differential asserts green, 0 dropped")
        return summary
