"""Assembling the phone book: Figures 2–7 as executable programs.

* :func:`build_phonebook` — Figure 2: ``PhoneBook`` links ``Database``
  with ``NumberInfo``, passes ``error`` through, hides ``delete``, and
  re-exports the rest.
* :func:`build_ipb` — Figure 3: the complete program ``IPB`` links
  ``PhoneBook`` with a ``Gui`` and ``Main``, with cyclic links between
  the phone book and the GUI.
* :func:`make_ipb_program` — Figure 5: ``MakeIPB`` abstracts ``IPB``
  over its GUI unit as a core-language function on first-class units.
* :func:`run_starter` — Figure 6: ``Starter`` picks a GUI at run time,
  links via ``MakeIPB``, and launches the result with ``invoke``.
* :func:`run_loader_demo` — Figures 7 + Section 3.4: a loader extension
  is retrieved from an archive under the loader signature and
  dynamically linked into the running phone book.
"""

from __future__ import annotations

from repro.dynlink.archive import UnitArchive
from repro.lang.errors import ArchiveError
from repro.lang.sexpr import read_sexpr
from repro.linking.graph import TypedLinkGraph
from repro.types.parser import parse_decls, parse_sig_text
from repro.unitc.ast import TExpr, TLambda, TVar, TypedInvokeExpr
from repro.unitc.parser import parse_typed_program
from repro.unitc.run import run_typed_expr
from repro.phonebook.units import (
    BROKEN_LOADER,
    DATABASE,
    DB_OPS_DECLS,
    ERROR_DECL,
    EXPERT_GUI,
    GUI,
    INFO_DECLS,
    LOADER_GUI,
    LOADER_SIG_TEXT,
    MAIN,
    NOVICE_GUI,
    NUMBER_INFO,
    SAMPLE_LOADER,
)

# Declarations of what PhoneBook provides (Figure 2's lower port row).
PHONEBOOK_PROVIDES = DB_OPS_DECLS + INFO_DECLS + """
    (val noInfo (-> info))
"""

#: Figure 5's GUI signature: "the linking information required to
#: produce the complete interactive phone book is independent of the
#: specific GUI unit".
GUI_SIG_TEXT = f"""
    (sig (import {DB_OPS_DECLS} {INFO_DECLS})
         (export (val error (-> str void))
                 (val openBook (-> db bool)))
         void)
"""


def _decls(text: str, keyword: str = "with"):
    """Parse a declaration fragment into (type decls, value decls)."""
    return parse_decls(read_sexpr(f"({keyword} {text})"), keyword)


def build_phonebook() -> str:
    """The Figure 2 ``PhoneBook`` compound, as source text.

    ``delete`` is provided by ``Database`` but not exported — hidden
    exactly as the figure shows.
    """
    database_provides = """
        (type db)
        (val new (-> db))
        (val insert (-> db str info void))
        (val delete (-> db str void))
        (val lookup (-> db str info info))
        (val size (-> db int))
    """
    info_provides = INFO_DECLS + "(val noInfo (-> info))"
    return f"""
    (compound/t (import {ERROR_DECL})
                (export {PHONEBOOK_PROVIDES})
      (link ({DATABASE}
             (with (type info) {ERROR_DECL})
             (provides {database_provides}))
            ({NUMBER_INFO}
             (with)
             (provides {info_provides}))))
    """


def build_ipb(gui_source: str | None = None) -> TExpr:
    """The Figure 3 ``IPB`` program: PhoneBook + Gui + Main.

    Links flow both from PhoneBook to Gui (the database operations) and
    from Gui to PhoneBook (``error``) — the cyclic linking the figure
    highlights.  Returns the compound as a typed expression.
    """
    graph = TypedLinkGraph()
    pb_t, pb_v = _decls(PHONEBOOK_PROVIDES, "provides")
    err_t, err_v = _decls(ERROR_DECL)
    graph.add_box("PhoneBook", parse_typed_program(build_phonebook()),
                  with_types=err_t, with_values=err_v,
                  prov_types=pb_t, prov_values=pb_v)
    graph.add_box("Gui", gui_source if gui_source is not None else GUI)
    graph.add_box("Main", MAIN)
    return graph.to_compound_expr()


def run_ipb(gui_source: str | None = None) -> tuple[object, str]:
    """Invoke ``IPB``; returns ``(bool result, GUI transcript)``."""
    result, _ty, output = run_typed_expr(
        TypedInvokeExpr(build_ipb(gui_source), (), ()))
    return result, output


def make_ipb_program(expert_mode: bool) -> TExpr:
    """Figures 5 and 6: ``Starter`` with ``MakeIPB``.

    ``MakeIPB`` is an ordinary core function whose parameter is typed
    by the GUI *signature*; applying it to either GUI unit yields a
    complete program unit, which ``Starter`` launches with ``invoke``.
    """
    gui_sig = parse_sig_text(GUI_SIG_TEXT)
    graph = TypedLinkGraph()
    pb_t, pb_v = _decls(PHONEBOOK_PROVIDES, "provides")
    err_t, err_v = _decls(ERROR_DECL)
    graph.add_box("PhoneBook", parse_typed_program(build_phonebook()),
                  with_types=err_t, with_values=err_v,
                  prov_types=pb_t, prov_values=pb_v)
    gui_with_t, gui_with_v = _decls(DB_OPS_DECLS + INFO_DECLS)
    gui_prov_t, gui_prov_v = _decls(
        "(val error (-> str void)) (val openBook (-> db bool))",
        "provides")
    graph.add_box("aGui", TVar("aGui"),
                  with_types=gui_with_t, with_values=gui_with_v,
                  prov_types=gui_prov_t, prov_values=gui_prov_v)
    graph.add_box("Main", MAIN)
    make_ipb = TLambda((("aGui", gui_sig),), graph.to_compound_expr())

    chooser = parse_typed_program(f"""
        (if {'#t' if expert_mode else '#f'}
            {EXPERT_GUI}
            {NOVICE_GUI})
    """)
    from repro.unitc.ast import TApp

    return TypedInvokeExpr(TApp(make_ipb, (chooser,)), (), ())


def run_starter(expert_mode: bool) -> tuple[object, str]:
    """Run Figure 6's ``Starter``; returns ``(result, transcript)``."""
    result, _ty, output = run_typed_expr(make_ipb_program(expert_mode))
    return result, output


# ---------------------------------------------------------------------------
# Dynamic linking (Figure 7)
# ---------------------------------------------------------------------------

#: Main variant that installs a dynamically retrieved loader extension.
MAIN_WITH_LOADER = f"""
    (unit/t (import (type db) (type info)
                    (val new (-> db))
                    (val insert (-> db str info void))
                    (val numInfo (-> int info))
                    (val openBook (-> db bool))
                    (val addLoader (-> {LOADER_SIG_TEXT} db str void))
                    (val ext {LOADER_SIG_TEXT}))
            (export)
      (let ((book (new)))
        (begin
          (insert book "robby" (numInfo 5550100))
          (addLoader ext book "imported-contact")
          (openBook book))))
"""


def build_loader_archive() -> UnitArchive:
    """An archive holding the sample extension and a broken one."""
    archive = UnitArchive()
    archive.put("sample-loader", SAMPLE_LOADER)
    archive.put("broken-loader", BROKEN_LOADER)
    return archive


def run_loader_demo(extension_name: str = "sample-loader"
                    ) -> tuple[object, str]:
    """Figure 7 end to end.

    The extension is retrieved from the archive and verified against
    the loader signature *before* it reaches the program; the program
    then links it in with ``invoke`` through ``addLoader``.  Retrieval
    failures (e.g. ``broken-loader``) raise
    :class:`~repro.lang.errors.ArchiveError` and never execute.
    """
    archive = build_loader_archive()
    loader_sig = parse_sig_text(LOADER_SIG_TEXT)
    extension, _sig = archive.retrieve_typed(extension_name, loader_sig)

    graph = TypedLinkGraph(vimports=(("ext", loader_sig),))
    pb_t, pb_v = _decls(PHONEBOOK_PROVIDES, "provides")
    err_t, err_v = _decls(ERROR_DECL)
    graph.add_box("PhoneBook", parse_typed_program(build_phonebook()),
                  with_types=err_t, with_values=err_v,
                  prov_types=pb_t, prov_values=pb_v)
    graph.add_box("Gui", LOADER_GUI)
    graph.add_box("Main", MAIN_WITH_LOADER)
    compound = graph.to_compound_expr()
    program = TypedInvokeExpr(
        compound, (), (("ext", extension),))
    result, _ty, output = run_typed_expr(program)
    return result, output
