"""The paper's running example: the interactive phone book.

* :mod:`repro.phonebook.units` — the atomic units of Figures 1–7
  (``Database``, ``NumberInfo``, ``Gui`` and variants, ``Main``) as
  typed unit sources,
* :mod:`repro.phonebook.program` — the assemblies: ``PhoneBook``
  (Figure 2), ``IPB`` (Figure 3), ``MakeIPB`` (Figure 5), ``Starter``
  (Figure 6), and the loader-extension demo (Figure 7).
"""

from repro.phonebook.units import (
    DATABASE,
    EXPERT_GUI,
    GUI,
    LOADER_SIG_TEXT,
    MAIN,
    NOVICE_GUI,
    NUMBER_INFO,
)
from repro.phonebook.program import (
    build_ipb,
    build_phonebook,
    make_ipb_program,
    run_ipb,
    run_loader_demo,
    run_starter,
)

__all__ = [
    "DATABASE",
    "EXPERT_GUI",
    "GUI",
    "LOADER_SIG_TEXT",
    "MAIN",
    "NOVICE_GUI",
    "NUMBER_INFO",
    "build_ipb",
    "build_phonebook",
    "make_ipb_program",
    "run_ipb",
    "run_loader_demo",
    "run_starter",
]
