"""The atomic units of the phone-book example (Figures 1, 3, 6, 7).

Each constant is typed unit source.  The paper's graphical boxes map
onto these as follows:

* :data:`DATABASE` — Figure 1's ``Database``: imports the ``info`` type
  and ``error``; defines the ``db`` type and its operations; its
  initialization expression performs start-up actions (the paper
  initializes a string hash table; here a statistics cell).
* :data:`NUMBER_INFO` — ``NumberInfo``: "a unit that implements the
  info type for phone numbers" (Figure 2).
* :data:`GUI` — Figure 3's ``Gui``, simulated textually: ``openBook``
  renders the book with ``display`` and returns ``#t``; ``error``
  prints and re-inserts a sentinel entry, exercising the cyclic
  ``insert → error → insert`` call chain of Section 3.2.
* :data:`EXPERT_GUI` / :data:`NOVICE_GUI` — the Figure 6 variants
  ``Starter`` chooses between.
* :data:`LOADER_GUI` — Figure 7's ``Gui`` with ``addLoader``, which
  dynamically links a loader-extension unit via ``invoke``.
* :data:`MAIN` — Figure 3's ``Main``: "creates a database and an
  associated graphical user interface"; its initialization value is
  the program's ``bool`` result.
"""

# Shared declaration fragments (the with/provides clause types).
DB_OPS_DECLS = """
    (type db)
    (val new (-> db))
    (val insert (-> db str info void))
    (val lookup (-> db str info info))
    (val size (-> db int))
"""

INFO_DECLS = """
    (type info)
    (val numInfo (-> int info))
    (val info->string (-> info str))
"""

ERROR_DECL = "(val error (-> str void))"

DATABASE = """
    (unit/t (import (type info) (val error (-> str void)))
            (export (type db)
                    (val new (-> db))
                    (val insert (-> db str info void))
                    (val delete (-> db str void))
                    (val lookup (-> db str info info))
                    (val size (-> db int)))
      (datatype entries
        (mt un-mt void)
        (node un-node (* str info entries))
        mt?)
      (datatype db
        (mkdb un-mkdb (box entries))
        (nodb un-nodb void)
        db?)
      (define op-count (box int) (box 0))
      (define new (-> db)
        (lambda () (mkdb (box (mt (void))))))
      (define insert (-> db str info void)
        (lambda ((d db) (key str) (v info))
          (begin
            (set-box! op-count (+ (unbox op-count) 1))
            (if (string=? key "")
                (error "insert: empty key")
                (set-box! (un-mkdb d)
                          (node (tuple key v (unbox (un-mkdb d)))))))))
      (define remove-key (-> entries str entries)
        (lambda ((e entries) (key str))
          (if (mt? e)
              e
              (let ((t (un-node e)))
                (if (string=? (proj 0 t) key)
                    (remove-key (proj 2 t) key)
                    (node (tuple (proj 0 t) (proj 1 t)
                                 (remove-key (proj 2 t) key))))))))
      (define has-key? (-> entries str bool)
        (lambda ((e entries) (key str))
          (if (mt? e)
              #f
              (if (string=? (proj 0 (un-node e)) key)
                  #t
                  (has-key? (proj 2 (un-node e)) key)))))
      (define delete (-> db str void)
        (lambda ((d db) (key str))
          (if (has-key? (unbox (un-mkdb d)) key)
              (set-box! (un-mkdb d) (remove-key (unbox (un-mkdb d)) key))
              (error (string-append "delete: no entry for " key)))))
      (define find (-> entries str info info)
        (lambda ((e entries) (key str) (default info))
          (if (mt? e)
              default
              (if (string=? (proj 0 (un-node e)) key)
                  (proj 1 (un-node e))
                  (find (proj 2 (un-node e)) key default)))))
      (define lookup (-> db str info info)
        (lambda ((d db) (key str) (default info))
          (find (unbox (un-mkdb d)) key default)))
      (define count-entries (-> entries int)
        (lambda ((e entries))
          (if (mt? e) 0 (+ 1 (count-entries (proj 2 (un-node e)))))))
      (define size (-> db int)
        (lambda ((d db)) (count-entries (unbox (un-mkdb d)))))
      ;; Start-up action, as in Figure 1's strTable initialization.
      (set-box! op-count 0))
"""

NUMBER_INFO = """
    (unit/t (import)
            (export (type info)
                    (val numInfo (-> int info))
                    (val noInfo (-> info))
                    (val info->string (-> info str)))
      (datatype info
        (num-info un-num int)
        (no-info un-no void)
        num?)
      (define numInfo (-> int info) num-info)
      (define noInfo (-> info) (lambda () (no-info (void))))
      (define info->string (-> info str)
        (lambda ((i info))
          (if (num? i) (number->string (un-num i)) "<no number>")))
      (void))
"""


def _gui(greeting: str, verbose: bool) -> str:
    """Build a Gui unit variant; Figure 6's Expert/Novice differ only
    in chrome."""
    verbose_line = (
        '(display "[gui] book opened, entries: ")' if verbose
        else '(display "entries: ")')
    return f"""
    (unit/t (import {DB_OPS_DECLS} {INFO_DECLS})
            (export (val error (-> str void))
                    (val openBook (-> db bool)))
      (define error-count (box int) (box 0))
      (define error (-> str void)
        (lambda ((msg str))
          (begin
            (set-box! error-count (+ (unbox error-count) 1))
            (display "{greeting} error: ")
            (display msg)
            (newline))))
      (define openBook (-> db bool)
        (lambda ((book db))
          (begin
            (display "{greeting}")
            (newline)
            {verbose_line}
            (display (number->string (size book)))
            (newline)
            (< (unbox error-count) 1))))
      (void))
"""


GUI = _gui("phone book", verbose=False)
EXPERT_GUI = _gui("expert phone book", verbose=True)
NOVICE_GUI = _gui("welcome to your phone book!", verbose=True)

#: The signature loader extensions must satisfy (Figure 7): they may
#: use the database operations and error handling, and their
#: initialization value is the loader function itself.
LOADER_SIG_TEXT = """
    (sig (import (type db) (type info)
                 (val insert (-> db str info void))
                 (val numInfo (-> int info))
                 (val error (-> str void)))
         (export)
         (-> db str void))
"""

#: Figure 7's Gui: ``addLoader`` consumes an extension unit and
#: dynamically links it with ``invoke``, installing the resulting
#: loader function.
LOADER_GUI = f"""
    (unit/t (import {DB_OPS_DECLS} {INFO_DECLS})
            (export (val error (-> str void))
                    (val openBook (-> db bool))
                    (val addLoader (-> {LOADER_SIG_TEXT} db str void)))
      (define error (-> str void)
        (lambda ((msg str))
          (begin (display "gui error: ") (display msg) (newline))))
      (define openBook (-> db bool)
        (lambda ((book db))
          (begin
            (display "entries: ")
            (display (number->string (size book)))
            (newline)
            #t)))
      (define addLoader (-> {LOADER_SIG_TEXT} db str void)
        (lambda ((ext {LOADER_SIG_TEXT}) (book db) (source str))
          (let ((loader (invoke/t ext
                          (type db db)
                          (type info info)
                          (val insert insert)
                          (val numInfo numInfo)
                          (val error error))))
            (loader book source))))
      (void))
"""

MAIN = """
    (unit/t (import (type db) (type info)
                    (val new (-> db))
                    (val insert (-> db str info void))
                    (val numInfo (-> int info))
                    (val openBook (-> db bool)))
            (export)
      ;; Create a database, populate it, and open the book window; the
      ;; bool result of openBook is the program's value (Section 3.2).
      (let ((book (new)))
        (begin
          (insert book "marion" (numInfo 5550001))
          (insert book "robby" (numInfo 5550002))
          (insert book "shriram" (numInfo 5550003))
          (openBook book))))
"""

#: A loader extension (the third-party plug-in of Section 3.4): loads
#: one number from a "foreign source" string.
SAMPLE_LOADER = """
    (unit/t (import (type db) (type info)
                    (val insert (-> db str info void))
                    (val numInfo (-> int info))
                    (val error (-> str void)))
            (export)
      (define load-one (-> db str void)
        (lambda ((book db) (source str))
          (if (string=? source "")
              (error "loader: empty source")
              (insert book source (numInfo 5559999)))))
      load-one)
"""

#: A malicious/broken extension: well-formed syntax, wrong signature.
BROKEN_LOADER = """
    (unit/t (import) (export)
      "i am not a loader function")
"""
