"""Type-safe dynamic linking (Section 3.4).

"The core language must provide a syntactic form that retrieves a unit
value from an archive, such as the Internet, and checks that the unit
satisfies a particular signature.  This type-checking must be performed
in the correct context to ensure that dynamic linking is type-safe.
Java's dynamic class loading is broken because it checks types in a
type environment that may differ from the environment where the class
is used."

* :mod:`repro.dynlink.archive` — the unit archive: serialized unit
  sources retrieved under a signature check in the receiver's context,
* :mod:`repro.dynlink.loader` — the Figure 7 plug-in protocol: a host
  that dynamically links retrieved units into a running program.
"""

from repro.dynlink.archive import UnitArchive
from repro.dynlink.loader import PluginHost, load_with_retry

__all__ = ["PluginHost", "UnitArchive", "load_with_retry"]
