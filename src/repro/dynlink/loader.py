"""The Figure 7 plug-in protocol: dynamic linking into a running host.

"The function ``addLoader`` consumes a loader extension as a unit and
dynamically links it into the program using ``invoke``.  The extension
unit imports types and functions that enable it to modify the phone
book database.  These imports are satisfied in the invoke expression
with types and variables that were originally imported into Gui, plus
the ``error`` function defined within Gui.  The result of invoking the
extension unit is the value of the unit's initialization expression,
which is required (via signatures) to be a function..."

:class:`PluginHost` packages that pattern: the host declares the
signature extensions must satisfy, the types and values it will feed
their imports, and a place to install each extension's initialization
value.
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro import limits as _limits
from repro.lang.errors import ArchiveError, LangError
from repro.lang.interp import Interpreter
from repro.obs import current as _obs_current
from repro.types.tyenv import TyEnv
from repro.types.types import Sig, Type
from repro.unitc.check import base_tyenv
from repro.unitc.erase import erase_unit
from repro.dynlink.archive import UnitArchive


class PluginHost:
    """A running program that accepts dynamically linked extensions.

    ``expected`` is the signature every extension must satisfy (its
    ``init`` type is the type of the value the host installs).
    ``type_imports`` supply the actual types behind the signature's
    imported type variables — the host's own types, exactly as Gui
    forwards its imported ``db`` and ``info``.  ``value_imports``
    supply the runtime values for the signature's imported value
    variables.
    """

    def __init__(self, interp: Interpreter, expected: Sig,
                 type_imports: dict[str, Type],
                 value_imports: dict[str, object],
                 on_install: Callable[[str, object], None] | None = None):
        self.interp = interp
        self.expected = expected
        self.type_imports = dict(type_imports)
        self.value_imports = dict(value_imports)
        self.installed: dict[str, object] = {}
        self._on_install = on_install
        missing_t = [n for n, _ in expected.timports
                     if n not in self.type_imports]
        missing_v = [n for n, _ in expected.vimports
                     if n not in self.value_imports]
        if missing_t or missing_v:
            raise ArchiveError(
                "plugin host does not supply the signature's imports: "
                + ", ".join(missing_t + missing_v))

    def load(self, archive: UnitArchive, name: str,
             env: TyEnv | None = None) -> object:
        """Retrieve, verify, dynamically link, and install an extension.

        Returns the extension's initialization value (e.g. the loader
        function of Figure 7) and remembers it under ``name``.

        Failures at any stage raise a typed :class:`LangError` subclass
        — retrieval problems surface as :class:`ArchiveError`, run-time
        problems in the extension's own code as ``RunTimeError`` — and
        each failure is traced as a ``dynlink.error`` event.  A plug-in
        that fails to install leaves the host unchanged.

        The whole load is one ``dynlink.load`` span: the archive's own
        retrieval span, the receiving-context checks, and the
        extension's invocation all nest inside it.
        """
        col = _obs_current()
        if col is None:
            return self._load(archive, name, env, None)
        with col.span("dynlink.load", {
                "name": name,
                "host_imports": len(self.value_imports)}) as sp:
            return self._load(archive, name, env, sp)

    def _load(self, archive: UnitArchive, name: str,
              env: TyEnv | None, sp) -> object:
        budget = _limits.current()
        if budget is not None:
            budget.check_deadline()
        col = _obs_current()
        try:
            expr, _actual = archive.retrieve_typed(
                name, self.expected,
                env if env is not None else base_tyenv())
            erased = erase_unit(expr)
            unit_value = self.interp.eval(erased)
            result = self.interp.invoke(unit_value,
                                        dict(self.value_imports))
        except ArchiveError:
            # Already traced (and typed) by the archive layer.
            raise
        except LangError as err:
            if col is not None:
                fields: dict[str, object] = {
                    "name": name, "stage": "install", "reason": str(err)}
                if getattr(err, "loc", None) is not None:
                    fields["loc"] = str(err.loc)
                col.emit("dynlink.error", fields)
            raise
        except (KeyError, TypeError, AttributeError) as err:
            # A malformed extension or host wiring bug must not leak an
            # untyped exception to the running program.
            if col is not None:
                col.emit("dynlink.error", {
                    "name": name, "stage": "install", "reason": repr(err)})
            raise ArchiveError(
                f"plug-in '{name}' failed to install: {err!r}") from err
        self.installed[name] = result
        if self._on_install is not None:
            self._on_install(name, result)
        if sp is not None:
            sp.annotate(stage="installed")
        return result

    def loaded_names(self) -> tuple[str, ...]:
        """Extensions installed so far, in load order."""
        return tuple(self.installed)


_T = TypeVar("_T")


def load_with_retry(fn: Callable[[], _T], retries: int = 0,
                    backoff_s: float = 0.05,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Callable[[], float] = random.random) -> _T:
    """Run an archive-load action, retrying transient failures.

    ``fn`` is any zero-argument load action (typically a closure over
    :meth:`PluginHost.load` or an archive retrieval).  Only
    :class:`ArchiveError` is retried — it is the archive layer's typed
    failure, the one a flaky store would raise — up to ``retries``
    extra attempts with exponential backoff starting at ``backoff_s``
    seconds.  Any other error, including
    :class:`~repro.limits.BudgetExceeded`, propagates immediately:
    retrying cannot help a typed rejection and must not help a
    resource exhaustion escape its budget.

    Each backoff carries ±25% jitter (drawn from ``rng``), so N
    loaders that failed together — concurrent server requests behind
    one slow source — retry spread out instead of as a thundering
    herd.  Under an ambient :class:`~repro.limits.Budget` wall-clock
    deadline, a backoff never sleeps past the time remaining: the
    delay is capped at the budget's
    :meth:`~repro.limits.Budget.deadline_remaining`, and when nothing
    remains the deadline check raises *before* a pointless sleep, so
    retries can no longer overshoot the deadline by up to a whole
    backoff.

    ``sleep`` and ``rng`` are injectable so tests (and the batch
    driver's dry runs) can retry without waiting and assert jitter
    bounds deterministically.
    """
    attempt = 0
    while True:
        budget = _limits.current()
        if budget is not None:
            budget.check_deadline()
        try:
            return fn()
        except _limits.BudgetExceeded:
            raise
        except ArchiveError:
            if attempt >= retries:
                raise
            delay = backoff_s * (2 ** attempt)
            delay *= 1.0 + 0.25 * (2.0 * rng() - 1.0)
            if budget is not None:
                remaining = budget.deadline_remaining()
                if remaining is not None:
                    if remaining <= 0.0:
                        budget.check_deadline()
                    delay = min(delay, remaining)
            sleep(delay)
            attempt += 1
