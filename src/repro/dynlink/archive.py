"""The unit archive: retrieval with signature verification.

An archive maps names to *serialized unit syntax* — units ship as
source, the form in which they are first-class and recompilable.  The
transport medium (here an in-memory table with JSON persistence,
standing in for "the Internet") is irrelevant to the semantics; what
matters is the retrieval contract:

1. the retrieved text is parsed and **type-checked from scratch in the
   receiver's environment** — never trusted from the sender, and never
   checked against a different context (the Java class-loading bug the
   paper cites [Saraswat 1997]),
2. the resulting signature must be a *subtype* of the signature the
   receiver expects, so specialized plug-ins satisfy general
   interfaces (Figure 14's subsumption),
3. only then is the unit released to the program for linking or
   invocation.

Untyped (UNITd) entries support a weaker contract: the Figure 10
context-sensitive checks plus an import/export name check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lang.errors import ArchiveError
from repro.lang.parser import parse_program
from repro.limits import BudgetExceeded
from repro.lang.pretty import show
from repro.obs import current as _obs_current
from repro.obs import span as _obs_span
from repro.serve import chaos as _chaos
from repro.types.subtype import sig_subtype
from repro.types.tyenv import TyEnv
from repro.types.types import Sig
from repro.unitc.ast import TypedUnitExpr
from repro.unitc.check import base_tyenv, check_typed_unit
from repro.unitc.parser import parse_typed_program
from repro.units import cache as _cache
from repro.units.ast import UnitExpr
from repro.units.check import check_unit


def _fail(name: str | None, stage: str, message: str,
          loc=None) -> "ArchiveError":
    """Build the typed retrieval error, tracing it as ``dynlink.error``.

    Every failure in the dynamic-linking layer goes through here so the
    trace records *where* retrieval broke (lookup, parse, check,
    subtype, persistence) alongside the raised :class:`ArchiveError`.
    When the failing AST or nested error carries a reader source
    location, it rides along as ``loc`` so ``repro trace report`` can
    print ``origin:line:col`` for the failure.
    """
    col = _obs_current()
    if col is not None:
        fields: dict[str, object] = {
            "name": name, "stage": stage, "reason": message}
        if loc is not None:
            fields["loc"] = str(loc)
        col.emit("dynlink.error", fields)
    return ArchiveError(message)


@dataclass(frozen=True)
class ArchiveEntry:
    """One archived unit: source text plus a typed/untyped marker.

    ``declared_sig`` is the *publisher's claim* about the unit's
    signature — useful for browsing an archive, but never trusted:
    retrieval always re-checks the source in the receiver's context.
    """

    name: str
    source: str
    typed: bool
    declared_sig: str | None = None


class UnitArchive:
    """A store of serialized units, retrieved under signature checks."""

    def __init__(self) -> None:
        self._entries: dict[str, ArchiveEntry] = {}

    # -- publishing -------------------------------------------------------

    def put(self, name: str, source: str, typed: bool = True,
            declared_sig: str | None = None) -> None:
        """Publish a unit's source under ``name``.

        Publication validates nothing: the archive is an untrusted
        medium, and all checking happens at retrieval.  A publisher may
        attach a ``declared_sig`` claim for browsing; it carries no
        authority.
        """
        self._entries[name] = ArchiveEntry(name, source, typed,
                                           declared_sig)

    def put_unit(self, name: str, unit: UnitExpr) -> None:
        """Publish an untyped unit AST (serialized through the printer)."""
        self._entries[name] = ArchiveEntry(name, show(unit), typed=False)

    def put_typed_unit(self, name: str, unit: TypedUnitExpr) -> None:
        """Publish a typed unit AST (serialized through the printer)."""
        from repro.unitc.pretty import pretty_texpr

        self._entries[name] = ArchiveEntry(name, pretty_texpr(unit),
                                           typed=True)

    def names(self) -> tuple[str, ...]:
        """All published names."""
        return tuple(self._entries)

    def declared_signature(self, name: str) -> Sig | None:
        """The publisher's (unverified!) signature claim, if any.

        Only suitable for browsing.  Tests demonstrate that a lying
        claim changes nothing: :meth:`retrieve_typed` judges the
        source itself.
        """
        from repro.types.parser import parse_sig_text

        entry = self._lookup(name)
        if entry.declared_sig is None:
            return None
        try:
            return parse_sig_text(entry.declared_sig,
                                  origin=f"<archive:{name}:claim>")
        except Exception as err:
            raise _fail(name, "claim",
                        f"archive entry '{name}' carries an unparseable "
                        f"signature claim: {err}")

    # -- retrieval ------------------------------------------------------------

    def retrieve_typed(self, name: str, expected: Sig,
                       env: TyEnv | None = None,
                       strict_valuable: bool = True
                       ) -> tuple[TypedUnitExpr, Sig]:
        """Retrieve a typed unit, verifying it against ``expected``.

        The unit is parsed and checked in ``env`` — the *receiver's*
        type environment — and its actual signature must be a subtype
        of ``expected``.  Returns the unit syntax and its actual
        signature.

        The whole retrieval is one ``dynlink.load`` span: the receiving
        context's ``check.*`` judgments nest inside it, and a failed
        retrieval shows as the span's ``err`` next to the staged
        ``dynlink.error`` event.
        """
        with _obs_span("dynlink.load", {"name": name, "typed": True}):
            return self._retrieve_typed(name, expected, env,
                                        strict_valuable)

    def _retrieve_typed(self, name: str, expected: Sig,
                        env: TyEnv | None,
                        strict_valuable: bool) -> tuple[TypedUnitExpr, Sig]:
        entry = self._lookup(name)
        if not entry.typed:
            raise _fail(name, "kind",
                        f"archive entry '{name}' is untyped; use "
                        f"retrieve_untyped")
        try:
            expr = parse_typed_program(entry.source,
                                       origin=f"<archive:{name}>")
        except BudgetExceeded:
            # Exhaustion mid-retrieval keeps its taxonomy (exit 3):
            # wrapping it as an ArchiveError would make a resource
            # failure retryable and mislabel it for callers.
            raise
        except Exception as err:
            raise _fail(name, "parse",
                        f"archive entry '{name}' failed to parse: {err}",
                        loc=getattr(err, "loc", None))
        if not isinstance(expr, TypedUnitExpr):
            raise _fail(name, "parse",
                        f"archive entry '{name}' is not a unit expression",
                        loc=getattr(expr, "loc", None))
        check_env = env if env is not None else base_tyenv()
        try:
            actual = check_typed_unit(expr, check_env, strict_valuable)
        except BudgetExceeded:
            raise
        except Exception as err:
            raise _fail(name, "check",
                        f"archive entry '{name}' failed to type-check in "
                        f"the receiving context: {err}",
                        loc=getattr(err, "loc", None) or expr.loc)
        if not sig_subtype(actual, expected):
            raise _fail(name, "subtype",
                        f"archive entry '{name}' does not satisfy the "
                        f"expected signature: {actual} is not a subtype "
                        f"of {expected}", loc=expr.loc)
        return expr, actual

    def retrieve_untyped(self, name: str,
                         expected_imports: tuple[str, ...],
                         expected_exports: tuple[str, ...],
                         strict_valuable: bool = False) -> UnitExpr:
        """Retrieve an untyped unit under a name-level interface check.

        The unit may import *fewer* names and export *more* than
        expected (the name-level shadow of signature subtyping).
        """
        with _obs_span("dynlink.load", {"name": name, "typed": False}):
            return self._retrieve_untyped(name, expected_imports,
                                          expected_exports, strict_valuable)

    def _retrieve_untyped(self, name: str,
                          expected_imports: tuple[str, ...],
                          expected_exports: tuple[str, ...],
                          strict_valuable: bool) -> UnitExpr:
        entry = self._lookup(name)
        origin = f"<archive:{name}>"
        try:
            # Repeated loads of the same entry parse once; the key
            # includes the origin so cached locations stay truthful.
            expr = _cache.cached_parse(
                origin + "\x00" + entry.source,
                lambda: parse_program(entry.source, origin=origin))
        except BudgetExceeded:
            raise
        except Exception as err:
            raise _fail(name, "parse",
                        f"archive entry '{name}' failed to parse: {err}",
                        loc=getattr(err, "loc", None))
        if not isinstance(expr, UnitExpr):
            raise _fail(name, "parse",
                        f"archive entry '{name}' is not a unit expression",
                        loc=getattr(expr, "loc", None))
        try:
            check_unit(expr, strict_valuable)
        except BudgetExceeded:
            raise
        except Exception as err:
            raise _fail(name, "check",
                        f"archive entry '{name}' failed checking: {err}",
                        loc=getattr(err, "loc", None) or expr.loc)
        extra = set(expr.imports) - set(expected_imports)
        if extra:
            raise _fail(name, "interface",
                        f"archive entry '{name}' requires unexpected "
                        f"imports: " + ", ".join(sorted(extra)),
                        loc=expr.loc)
        missing = set(expected_exports) - set(expr.exports)
        if missing:
            raise _fail(name, "interface",
                        f"archive entry '{name}' lacks expected exports: "
                        + ", ".join(sorted(missing)), loc=expr.loc)
        return expr

    def _lookup(self, name: str) -> ArchiveEntry:
        if _chaos._armed:
            _chaos.slow_load(f"archive:{name}")
        entry = self._entries.get(name)
        if entry is None:
            raise _fail(name, "lookup",
                        f"no archive entry named '{name}'")
        if _chaos._armed:
            source = _chaos.poison(f"archive:{name}", entry.source)
            if source is not entry.source:
                entry = ArchiveEntry(name=entry.name, source=source,
                                     typed=entry.typed,
                                     declared_sig=entry.declared_sig)
        return entry

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the archive as JSON."""
        payload = {
            entry.name: {"source": entry.source, "typed": entry.typed,
                         "declared_sig": entry.declared_sig}
            for entry in self._entries.values()}
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "UnitArchive":
        """Read an archive written by :meth:`save`.

        Malformed persistence — non-object payloads, entries missing
        the ``source``/``typed`` fields, wrongly typed fields — raises
        :class:`ArchiveError` (never a bare ``KeyError``/
        ``AttributeError``): the archive file is as untrusted as the
        units inside it.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise _fail(None, "persistence",
                        f"cannot load archive: {err}")
        if not isinstance(payload, dict):
            raise _fail(None, "persistence",
                        f"cannot load archive: top level must be an "
                        f"object, got {type(payload).__name__}")
        archive = cls()
        for name, fields in payload.items():
            if not isinstance(fields, dict):
                raise _fail(name, "persistence",
                            f"archive entry '{name}' is malformed: "
                            f"expected an object, got "
                            f"{type(fields).__name__}")
            missing = [key for key in ("source", "typed")
                       if key not in fields]
            if missing:
                raise _fail(name, "persistence",
                            f"archive entry '{name}' is malformed: "
                            f"missing field(s) " + ", ".join(missing))
            if not isinstance(fields["source"], str):
                raise _fail(name, "persistence",
                            f"archive entry '{name}' is malformed: "
                            f"'source' must be a string")
            archive.put(name, fields["source"], bool(fields["typed"]),
                        fields.get("declared_sig"))
        return archive
