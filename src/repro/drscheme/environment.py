"""The DrScheme-style environment shell.

Clients and tools are ordinary units.  The environment supplies their
imports as *capabilities* — host-implemented primitives scoped to the
client — so the unit interface is also the security boundary:

* ``print!`` writes to the client's own console buffer,
* ``kv-get`` / ``kv-put!`` access a store namespaced by client name,
* ``shared-get`` / ``shared-put!`` access one shared board (the
  sanctioned channel between clients),
* ``check-syntax`` runs the Figure 10 checker over source text (the
  syntax-checker tool of Section 7 as a capability).

Launching evaluates the client unit's definitions and initialization
expression; a run-time error in a client is caught, recorded on its
:class:`ClientRecord`, and does not disturb the environment or other
clients — the "boundaries between clients" of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import LangError, UnitLinkError
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.lang.values import Primitive, UnitValue
from repro.units.check import check_expr


@dataclass
class ClientRecord:
    """The environment's bookkeeping for one launched client."""

    name: str
    status: str = "launched"      # "launched" | "finished" | "crashed"
    result: object = None
    error: str | None = None
    console: list[str] = field(default_factory=list)

    def output(self) -> str:
        """Everything the client printed, concatenated."""
        return "".join(self.console)


class DrScheme:
    """An operating system for unit programs."""

    def __init__(self) -> None:
        self.interp = Interpreter()
        self.clients: dict[str, ClientRecord] = {}
        self.tools: dict[str, UnitValue] = {}
        self._kv: dict[str, object] = {}
        self._shared: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------

    def _capabilities(self, record: ClientRecord) -> dict[str, object]:
        """Build the capability imports for one client."""
        prefix = record.name + "/"

        def print_(text: object) -> None:
            record.console.append(str(text))

        def kv_put(key: str, value: object) -> None:
            self._kv[prefix + key] = value

        def kv_get(key: str, default: object) -> object:
            return self._kv.get(prefix + key, default)

        def shared_put(key: str, value: object) -> None:
            self._shared[key] = value

        def shared_get(key: str, default: object) -> object:
            return self._shared.get(key, default)

        def check_syntax(source: str) -> bool:
            try:
                check_expr(parse_program(source), strict_valuable=False)
            except LangError:
                return False
            return True

        return {
            "print!": Primitive("print!", print_, 1),
            "kv-put!": Primitive("kv-put!", kv_put, 2),
            "kv-get": Primitive("kv-get", kv_get, 2),
            "shared-put!": Primitive("shared-put!", shared_put, 2),
            "shared-get": Primitive("shared-get", shared_get, 2),
            "check-syntax": Primitive("check-syntax", check_syntax, 1),
        }

    #: The capability names the environment can satisfy.
    CAPABILITIES = ("print!", "kv-put!", "kv-get", "shared-put!",
                    "shared-get", "check-syntax")

    # ------------------------------------------------------------------
    # Tools
    # ------------------------------------------------------------------

    def install_tool(self, name: str, unit) -> None:
        """Install a tool unit into the environment.

        A tool may import only environment capabilities; its exports
        become available to clients that import them by name.
        """
        if isinstance(unit, str):
            unit = self.interp.run(unit, origin=f"<tool:{name}>")
        if not isinstance(unit, UnitValue):
            raise UnitLinkError(f"tool '{name}' is not a unit")
        foreign = [imp for imp in unit.imports
                   if imp not in self.CAPABILITIES]
        if foreign:
            raise UnitLinkError(
                f"tool '{name}' imports more than the environment "
                f"provides: " + ", ".join(foreign))
        self.tools[name] = unit

    def install_tool_from_archive(self, archive, name: str,
                                  expected_exports: tuple[str, ...]) -> None:
        """Dynamically link a tool retrieved from an archive.

        Retrieval verifies the name-level interface before the tool's
        code ever runs (Section 3.4's contract, untyped flavour).
        """
        unit_expr = archive.retrieve_untyped(
            name, expected_imports=self.CAPABILITIES,
            expected_exports=expected_exports)
        self.install_tool(name, self.interp.eval(unit_expr))

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------

    def launch(self, name: str, program,
               tools: tuple[str, ...] = ()) -> ClientRecord:
        """Launch a client program with fresh capability imports.

        ``tools`` names installed tools whose exports the client may
        import; each launch instantiates those tools *freshly for this
        client* so tool state is also per-client.
        """
        if name in self.clients:
            raise UnitLinkError(f"client '{name}' is already running")
        if isinstance(program, str):
            program = self.interp.run(program, origin=f"<client:{name}>")
        if not isinstance(program, UnitValue):
            raise UnitLinkError(f"client '{name}' is not a unit")
        record = ClientRecord(name)
        capabilities = self._capabilities(record)

        imports: dict[str, object] = {}
        available: dict[str, object] = dict(capabilities)
        for tool_name in tools:
            tool = self.tools.get(tool_name)
            if tool is None:
                raise UnitLinkError(f"no tool named '{tool_name}'")
            available.update(self._instantiate_tool(tool, capabilities))
        for import_name in program.imports:
            if import_name not in available:
                raise UnitLinkError(
                    f"client '{name}' imports '{import_name}', which "
                    f"neither the environment nor its tools provide")
            imports[import_name] = available[import_name]

        self.clients[name] = record
        try:
            record.result = self.interp.invoke(program, imports)
            record.status = "finished"
        except LangError as err:
            record.status = "crashed"
            record.error = str(err)
        return record

    def _instantiate_tool(self, tool: UnitValue,
                          capabilities: dict[str, object]) -> dict[str, object]:
        """Invoke a tool unit and collect its exported values."""
        from repro.lang.values import Cell

        cells = {}
        for import_name in tool.imports:
            cells[import_name] = Cell(capabilities[import_name])
        export_cells = {}
        for export_name in tool.exports:
            cell = Cell()
            cells[export_name] = cell
            export_cells[export_name] = cell
        for init_env, init in self.interp.instantiate(tool, cells):
            self.interp.eval(init, init_env)
        return {name: cell.get() for name, cell in export_cells.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def client(self, name: str) -> ClientRecord:
        """Look up a client's record."""
        record = self.clients.get(name)
        if record is None:
            raise KeyError(f"no client named '{name}'")
        return record

    def shared_board(self) -> dict[str, object]:
        """A snapshot of the shared board."""
        return dict(self._shared)

    def store_snapshot(self) -> dict[str, object]:
        """A snapshot of the namespaced store (keys are client/key)."""
        return dict(self._kv)

    def status_report(self) -> str:
        """A human-readable summary of the environment."""
        lines = [f"tools: {', '.join(self.tools) or '(none)'}"]
        for record in self.clients.values():
            lines.append(
                f"client {record.name}: {record.status}"
                + (f" ({record.error})" if record.error else ""))
        return "\n".join(lines)
