"""Built-in tools for the DrScheme-style environment.

Section 7 names DrScheme's integrated components: "a multimedia
editor, an interactive evaluator, a syntax checker, and a static
debugger."  Each is modelled here as a unit over the environment's
capability imports.
"""

#: A buffer editor storing text in the client-namespaced store.
EDITOR = """
    (unit (import kv-put! kv-get) (export open-buffer! append-line!
                                          buffer-text)
      (define open-buffer! (lambda (name)
        (kv-put! (string-append "buf:" name) "")))
      (define append-line! (lambda (name line)
        (kv-put! (string-append "buf:" name)
                 (string-append
                   (kv-get (string-append "buf:" name) "")
                   line "\\n"))))
      (define buffer-text (lambda (name)
        (kv-get (string-append "buf:" name) "")))
      (void))
"""

#: An interactive evaluator: runs little arithmetic scripts over a
#: register, printing each result to the client console.
EVALUATOR = """
    (unit (import print!) (export reset! apply-op! current)
      (define register (box 0))
      (define reset! (lambda (v)
        (begin (set-box! register v)
               (print! (string-append "= " (number->string v))))))
      (define apply-op! (lambda (op v)
        (begin
          (if (string=? op "+")
              (set-box! register (+ (unbox register) v))
              (if (string=? op "*")
                  (set-box! register (* (unbox register) v))
                  (print! (string-append "unknown op " op))))
          (print! (string-append "= " (number->string
                                        (unbox register)))))))
      (define current (lambda () (unbox register)))
      (void))
"""

#: The syntax checker: wraps the check-syntax capability with a
#: console report.
SYNTAX_CHECKER = """
    (unit (import check-syntax print!) (export check-and-report!)
      (define check-and-report! (lambda (source)
        (if (check-syntax source)
            (begin (print! "syntax ok") #t)
            (begin (print! "syntax error") #f))))
      (void))
"""

#: A "static debugger" stand-in: walks a list of (name . value)
#: observations and flags suspicious ones onto the shared board.
DEBUGGER = """
    (unit (import shared-put! print!) (export observe! flags)
      (define count (box 0))
      (define observe! (lambda (label value)
        (if (< value 0)
            (begin
              (set-box! count (+ (unbox count) 1))
              (shared-put! (string-append "flag:" label) value)
              (print! (string-append "flagged " label)))
            (void))))
      (define flags (lambda () (unbox count)))
      (void))
"""

#: Registry of the built-in tool sources.
BUILTIN_TOOLS: dict[str, str] = {
    "editor": EDITOR,
    "evaluator": EVALUATOR,
    "syntax-checker": SYNTAX_CHECKER,
    "debugger": DEBUGGER,
}
