"""A DrScheme-style environment: an operating system for unit programs.

Section 7: "DrScheme is a large and dynamic program with many
integrated components ... Additional components can be dynamically
linked into the environment.  DrScheme also acts as an operating
system for client programs that are being developed, launching client
programs by dynamically linking them into the system while maintaining
the boundaries between clients."

:class:`repro.drscheme.environment.DrScheme` reproduces that
architecture in miniature: tools are units installed (optionally from
an archive, with interface verification) into the environment; client
programs are units launched with capability imports — a private
console, a namespaced key-value store, a shared board — and a client
crash never takes down the environment or its neighbours.
"""

from repro.drscheme.environment import ClientRecord, DrScheme
from repro.drscheme.tools import BUILTIN_TOOLS

__all__ = ["BUILTIN_TOOLS", "ClientRecord", "DrScheme"]
