"""Command-line driver for the unit language.

Usage::

    python -m repro run FILE            # evaluate an untyped program
    python -m repro check FILE          # Figure 10 checks only
    python -m repro typecheck FILE      # typed program: print its type
    python -m repro run-typed FILE      # typed program: check + run
    python -m repro trace steps FILE    # small-step reduction trace
    python -m repro compile FILE        # print the Figure 12 compilation
    python -m repro demo FILE           # every pipeline stage on FILE
    python -m repro batch DIR           # run every program in DIR with
                                        # per-item budgets and isolation
    python -m repro figures [N ...]     # run figure reproductions

Trace-analysis toolkit (consumes ``--trace``/``--metrics-out`` files;
see docs/TRACING.md)::

    python -m repro trace report T.jsonl         # span tree, critical
                                                 # path, self-time ranks
    python -m repro trace diff BASE CUR          # per-kind count deltas;
                                                 # exits 1 past --threshold
    python -m repro trace flame T.jsonl          # collapsed stacks for
                                                 # flamegraph tools

``repro trace FILE`` (no tool name) still prints the reduction trace,
as ``trace steps`` does.

Metrics toolkit (consumes ``metrics1`` snapshots from
``--metrics-out``; see docs/METRICS.md)::

    python -m repro metrics report M.json ...    # merge snapshots, render
                                                 # p50/p90/p99 latency tables
    python -m repro metrics report M.json --prometheus
    python -m repro metrics diff BASE CUR        # histogram count/latency
                                                 # regression gate

Programs are single expressions in the s-expression surface syntax
(see the README's grammar summary).  ``run`` prints the program's value
and anything it displayed.

Observability (any subcommand)::

    python -m repro --trace out.jsonl demo examples/phonebook.scm
    python -m repro --metrics run examples/phonebook.scm
    python -m repro --profile run examples/phonebook.scm

``--trace FILE`` records every pipeline event (reduction steps, link
edges, checks, compiles, invokes, dynamic-link loads) as JSON Lines;
``--metrics`` prints the counter/timer snapshot as JSON on stderr
(``--metrics-out FILE`` writes it to a file instead); ``--profile``
prints a cProfile report on stderr.  All three are off by default and
cost nothing when off.

Caching (any subcommand)::

    python -m repro --no-term-cache run examples/phonebook.scm
    python -m repro --cache-dir .repro-cache demo examples/phonebook.scm
    python -m repro bench --quick

Every invocation runs with the term-performance layer on (memoized
free variables and substitution, hash-consing) and a fresh
content-addressed unit cache (check/compile/link/parse reuse for
structurally identical units — linking is incremental: resolved link
subgraphs are keyed on their constituents' digests; ``cache.*`` trace
events report hits).  ``--no-term-cache`` disables all of it — the
escape hatch and the differential-testing baseline.  ``--cache-dir
DIR`` (or the ``REPRO_CACHE_DIR`` environment variable) adds an
on-disk tier so compiled units and merged link results persist across
invocations.  ``bench`` measures the
difference and writes ``BENCH_results.json`` (docs/PERFORMANCE.md).

Resource governance (docs/ROBUSTNESS.md)::

    python -m repro batch progs/ --eval-steps 100000 --deadline 2.0
    python -m repro batch progs/ --out records.jsonl --retry 2

``batch`` runs every matching program in a directory, each under a
fresh budget, writing one JSON record per item; a looping or
exhausting item becomes a failure record while the rest complete.
Exit code 3 is reserved for budget exhaustion: ``demo`` exits 3 when
the machine step budget runs out, and any subcommand exits 3 when a
:class:`~repro.limits.BudgetExceeded` escapes (``batch --fail-fast``
included).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lang.errors import LangError
from repro.lang.interp import Interpreter
from repro.limits import BudgetExceeded
from repro.lang.machine import Machine
from repro.lang.parser import parse_script
from repro.lang.pretty import pretty
from repro.lang.values import to_write_string
from repro.units.check import check_program
from repro.units.compile import compile_expr


def _read(path: str) -> str:
    return Path(path).read_text()


def _load_script(args: argparse.Namespace):
    """Parse the program file, prepending any ``--load`` libraries.

    Each ``--load FILE`` contributes its top-level definitions
    (typically named units) to the main script's scope — assembly-line
    programming across files: parts in their own files, one file doing
    the assembly.
    """
    from repro.lang.ast import Letrec
    from repro.lang.errors import ParseError
    from repro.lang.parser import parse_library

    bindings: list = []
    for lib in getattr(args, "load", None) or []:
        bindings.extend(parse_library(_read(lib), origin=lib))
    main_expr = parse_script(_read(args.file), origin=args.file)
    if not bindings:
        return main_expr
    if isinstance(main_expr, Letrec):
        combined = bindings + list(main_expr.bindings)
        names = [name for name, _ in combined]
        if len(set(names)) != len(names):
            raise ParseError("--load: duplicate top-level definition")
        return Letrec(tuple(combined), main_expr.body)
    return Letrec(tuple(bindings), main_expr)


def cmd_run(args: argparse.Namespace) -> int:
    """Evaluate an untyped unit program."""
    expr = _load_script(args)
    check_program(expr, strict_valuable=not args.lenient)
    backend_name = getattr(args, "backend", "interp")
    if backend_name == "pycode":
        # The codegen backend runs the statically linked program (the
        # codegen cache is keyed on the linked digest); linking
        # preserves behaviour, so the printed result is unchanged.
        from repro import backend as _backend
        from repro.units.linker import link_and_optimize

        linked, _stats = link_and_optimize(expr)
        result, output = _backend.compile_program(linked).run()
    elif backend_name == "machine":
        from repro.lang.ast import Lit
        from repro.lang.machine import machine_eval

        final, output = machine_eval(expr)
        result = final.value if isinstance(final, Lit) else final
    else:
        interp = Interpreter()
        result = interp.eval(expr)
        output = interp.port.getvalue()
    if output:
        sys.stdout.write(output)
        if not output.endswith("\n"):
            sys.stdout.write("\n")
    print("=>", to_write_string(result))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the Figure 10 context-sensitive checks."""
    expr = _load_script(args)
    check_program(expr, strict_valuable=not args.lenient)
    print("ok")
    return 0


def cmd_typecheck(args: argparse.Namespace) -> int:
    """Type-check a typed program and print its type."""
    from repro.unitc.run import typecheck

    ty = typecheck(_read(args.file), origin=args.file,
                   strict_valuable=not args.lenient)
    print(ty)
    return 0


def cmd_run_typed(args: argparse.Namespace) -> int:
    """Check and run a typed program."""
    from repro.unitc.run import run_typed

    result, ty, output = run_typed(_read(args.file), origin=args.file,
                                   strict_valuable=not args.lenient)
    if output:
        sys.stdout.write(output)
        if not output.endswith("\n"):
            sys.stdout.write("\n")
    print("=>", to_write_string(result), ":", ty)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print a small-step reduction trace."""
    expr = _load_script(args)
    machine = Machine()
    for index, term in enumerate(machine.trace(expr, limit=args.limit)):
        print(f"[{index}]", pretty(term, width=100))
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    """Analyze a recorded JSONL trace: span tree, critical path,
    per-kind counts, top self-time spans, failures with locations."""
    from repro import obs

    try:
        events = obs.read_jsonl(args.trace_file)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(obs.render_report(events, top=args.top,
                            max_depth=args.max_depth))
    if args.min_spans:
        spans = obs.build_spans(events).span_count
        if spans < args.min_spans:
            print(f"error: trace has {spans} span(s), expected at least "
                  f"{args.min_spans}", file=sys.stderr)
            return 1
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    """Diff per-kind event counts between two traces or metrics files;
    exit nonzero when a count regresses past the threshold."""
    from repro import obs

    try:
        base = obs.load_counts(args.base)
        cur = obs.load_counts(args.current)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    deltas = obs.diff_counts(base, cur)
    text, failed = obs.render_diff(deltas, args.threshold,
                                   strict=args.strict)
    print(text)
    return 1 if failed else 0


def cmd_trace_flame(args: argparse.Namespace) -> int:
    """Fold a trace's span tree into collapsed-stack flamegraph input."""
    from repro import obs

    try:
        events = obs.read_jsonl(args.trace_file)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    folded = obs.render_flame(events)
    if args.output:
        Path(args.output).write_text(folded + ("\n" if folded else ""),
                                     encoding="utf-8")
        print(f"flame: {len(folded.splitlines())} stacks -> {args.output}",
              file=sys.stderr)
    elif folded:
        print(folded)
    return 0


def cmd_metrics_report(args: argparse.Namespace) -> int:
    """Merge ``metrics1`` snapshots and render percentile tables (or
    Prometheus text exposition with ``--prometheus``)."""
    from repro import obs

    try:
        snapshot = obs.merge_snapshot_files(args.files)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.prometheus:
        sys.stdout.write(obs.render_prometheus(snapshot))
    else:
        print(obs.render_metrics_report(snapshot))
    return 0


def cmd_metrics_diff(args: argparse.Namespace) -> int:
    """Diff two metrics snapshots: histogram observation counts gate
    by default; p50/p99 latency gates when ``--latency-threshold`` is
    given.  Exit 1 on regression."""
    from repro import obs

    try:
        base = obs.load_snapshot(args.base)
        cur = obs.load_snapshot(args.current)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    text, failed = obs.render_metrics_diff(
        base, cur, count_threshold=args.threshold,
        latency_threshold=args.latency_threshold,
        latency_floor=args.latency_floor, strict=args.strict)
    print(text)
    return 1 if failed else 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Print the Figure 12 compilation of a program."""
    expr = _load_script(args)
    print(pretty(compile_expr(expr)))
    return 0


def cmd_link(args: argparse.Namespace) -> int:
    """Statically link (flatten + optimize) a program and print it."""
    from repro.units.linker import link_and_optimize

    expr = _load_script(args)
    check_program(expr, strict_valuable=not args.lenient)
    linked, stats = link_and_optimize(expr)
    print(f"; {stats}")
    print(pretty(linked))
    return 0


def cmd_repl(args: argparse.Namespace) -> int:
    """An interactive read-eval-print loop with unit support.

    Top-level ``(define x e)`` forms bind into the session's global
    environment (so units can be named and linked across inputs); any
    other form is evaluated and its value printed.
    """
    from repro.lang.parser import _parse_define, parse_expr
    from repro.lang.sexpr import SList, Symbol, read_sexpr
    from repro.lang.errors import LangError

    interp = Interpreter()
    print("units repl — (define x e) persists; ctrl-d exits")
    while True:
        try:
            line = input("units> ")
        except EOFError:
            print()
            return 0
        if not line.strip():
            continue
        try:
            datum = read_sexpr(line, origin="<repl>")
            if isinstance(datum, SList) and len(datum) > 0 \
                    and isinstance(datum[0], Symbol) \
                    and datum[0].name == "define":
                name, rhs = _parse_define(datum)
                interp.global_env.define(name, interp.eval(rhs))
                print(f"defined {name}")
                continue
            value = interp.eval(parse_expr(datum))
            flushed = interp.port.getvalue()
            if flushed:
                sys.stdout.write(flushed)
                interp.port.chunks.clear()
                if not flushed.endswith("\n"):
                    sys.stdout.write("\n")
            print("=>", to_write_string(value))
        except LangError as err:
            print(f"error: {err}")


def cmd_demo(args: argparse.Namespace) -> int:
    """Run every pipeline stage on one untyped program.

    The point of this subcommand is observability: one invocation
    exercises checking, static linking, compilation, archive retrieval
    (dynamic linking), the small-step machine, and the big-step
    interpreter, so a ``--trace`` of it shows events from every family.
    The interpreter and machine results are compared at the end.
    """
    from repro.units.linker import link_and_optimize
    from repro.units.ast import UnitExpr
    from repro.dynlink.archive import UnitArchive

    expr = _load_script(args)
    check_program(expr, strict_valuable=not args.lenient)
    print("check: ok")

    linked, stats = link_and_optimize(expr)
    print(f"link: {stats}")

    # Re-check the linked program (lenient mode, as the archive's
    # retrieval check below runs): linking must preserve
    # well-formedness, and under the default cache scope this primes
    # the check cache the retrieval then hits.
    check_program(linked, strict_valuable=False)
    print("recheck: linked program ok")

    compiled = compile_expr(expr)
    print(f"compile: {type(compiled).__name__}")

    # Round-trip the statically linked unit through the archive so the
    # dynamic-linking layer runs too (Figure 7's retrieval checks).
    from repro.units.ast import InvokeExpr

    unit = linked.expr if isinstance(linked, InvokeExpr) else linked
    if isinstance(unit, UnitExpr):
        archive = UnitArchive()
        archive.put_unit("demo", unit)
        retrieved = archive.retrieve_untyped(
            "demo", unit.imports, unit.exports)
        print(f"dynlink: retrieved 'demo' "
              f"({len(retrieved.exports)} exports)")
    else:
        print("dynlink: skipped (program is not a unit after linking)")

    from repro.lang.ast import Lit

    from repro.obs import span as _obs_span

    machine = Machine(max_steps=args.limit)
    state = machine.load(expr)
    steps = 0
    # demo drives machine.step() by hand, so the run()/trace() span
    # never fires here; open the reduce.machine span ourselves.
    with _obs_span("reduce.machine", {"driver": "demo"}):
        for _ in range(args.limit):
            if not machine.step(state):
                break
            steps += 1
        else:
            # Exit code 3 is the budget-exhaustion code (see main()):
            # distinguishable from a language error (1) in scripts.
            print("error: machine step budget exhausted", file=sys.stderr)
            return 3
    print(f"machine: {steps} steps")

    interp = Interpreter()
    result = interp.eval(expr)
    output = interp.port.getvalue()
    if output:
        sys.stdout.write(output)
        if not output.endswith("\n"):
            sys.stdout.write("\n")
    print("=>", to_write_string(result))

    final = state.control
    if not (isinstance(final, Lit)
            and to_write_string(final.value) == to_write_string(result)):
        print("error: interpreter and machine disagree", file=sys.stderr)
        return 1

    if getattr(args, "backend", "interp") == "pycode":
        # One more evaluator: compile the linked program to Python
        # closures and hold it to the interpreter's result.  A second
        # demo run with the same --cache-dir serves the code object
        # from the pycode store (the check.sh smoke asserts this).
        from repro import backend as _backend

        program = _backend.compile_program(linked)
        py_result, py_output = program.run()
        print(f"pycode: {to_write_string(py_result)}")
        if (to_write_string(py_result) != to_write_string(result)
                or py_output != output):
            print("error: interpreter and pycode backend disagree",
                  file=sys.stderr)
            return 1
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Run every program in a directory with per-item isolation.

    Each item runs under a fresh budget built from the ``--*`` caps;
    one record per item is written as JSON Lines (``--out FILE``, or
    stdout).  The batch completing is success (exit 0) even when items
    failed — the records carry the failures; ``--fail-fast`` instead
    stops at the first failure and exits nonzero (3 when the failure
    was budget exhaustion, 1 otherwise).
    """
    from repro import batch as _batch
    from repro import limits as _limits
    from repro import obs

    root = Path(args.directory)
    if not root.is_dir():
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2
    paths = sorted(root.glob(args.pattern))
    if not paths:
        print(f"error: no files match {args.pattern!r} in {root}",
              file=sys.stderr)
        return 2

    def make_budget() -> _limits.Budget:
        return _limits.Budget(
            eval_steps=args.eval_steps,
            machine_steps=args.machine_steps,
            subst_nodes=args.subst_nodes,
            expand_fuel=args.expand_fuel,
            max_depth=args.max_depth,
            deadline_s=args.deadline,
        )

    # Each item runs in its own collector scope, flushed into one
    # registry; with --trace/--metrics active the registry adopts the
    # items' span trees into the CLI collector so the written trace is
    # a single coherent forest.
    registry = obs.MetricsRegistry(parent=obs.current())
    records, failures = _batch.run_batch(
        paths, make_budget, lenient=args.lenient, retries=args.retry,
        fail_fast=args.fail_fast, registry=registry,
        backend=args.backend)
    if args.out:
        written = _batch.write_records(records, args.out)
        print(f"batch: {written} record(s) -> {args.out}",
              file=sys.stderr)
    else:
        import json as _json

        for record in records:
            print(_json.dumps(record, sort_keys=True))
    ok = len(records) - failures
    print(f"batch: {ok} ok, {failures} failed, {len(records)} total",
          file=sys.stderr)
    stage_hists = {name: hist
                   for name, hist in registry.histograms.items()
                   if name.startswith("stage.")}
    for line in obs.render_percentiles(stage_hists,
                                       title="stage latency (ms)"):
        print(line, file=sys.stderr)
    if args.metrics_snapshot:
        import json as _json

        Path(args.metrics_snapshot).write_text(
            _json.dumps(registry.snapshot(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        print(f"metrics: snapshot -> {args.metrics_snapshot}",
              file=sys.stderr)
    if args.fail_fast and failures:
        failed = next(r for r in records if r["status"] == "error")
        error = failed["error"]
        print(f"error: {failed['file']}: {error['message']}",
              file=sys.stderr)
        return 3 if error["type"] == "BudgetExceeded" else 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark the pipeline cached vs uncached; write the results."""
    if getattr(args, "serve", False):
        from repro.serve.loadgen import run_serve_bench

        run_serve_bench(quick=args.quick, out=args.out,
                        processes=args.processes)
        return 0
    from repro.bench import run_bench

    return run_bench(quick=args.quick, out=args.out,
                     snapshot=args.snapshot, backend=args.backend)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the link-server daemon (or the chaos sweep)."""
    import os

    if args.chaos:
        from repro.serve.chaos import run_chaos_sweep

        run_chaos_sweep()
        return 0
    from repro.serve.server import ServeConfig, run_server

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, processes=args.processes,
        default_deadline_s=args.deadline,
        max_deadline_s=args.max_deadline,
        cache_dir=args.cache_dir or os.environ.get("REPRO_CACHE_DIR"),
        ttl_s=args.ttl, allow_chaos=args.allow_chaos,
        port_file=args.port_file)
    return run_server(config)


def cmd_client(args: argparse.Namespace) -> int:
    """Send one request to a running link server; print the response."""
    import json

    from repro.serve.client import (ServeClient, ServeError,
                                    exit_code_for, read_port_file)

    port = args.port
    if port is None:
        if not args.port_file:
            print("client: need --port or --port-file", file=sys.stderr)
            return 2
        try:
            port = read_port_file(args.port_file)
        except ServeError as err:
            # Transport failures are retryable (exit 2), not a bug.
            print(f"error: {err}", file=sys.stderr)
            return 2
    fields: dict[str, object] = {}
    if args.op in ("check", "link", "run"):
        if args.file:
            source = Path(args.file).read_text()
            fields["origin"] = args.file
        else:
            source = sys.stdin.read()
            fields["origin"] = "<stdin>"
        fields["source"] = source
        fields["backend"] = args.backend
        if args.lenient:
            fields["lenient"] = True
        if args.archive:
            fields["archive"] = True
        if args.retries:
            fields["retries"] = args.retries
        if args.eval_steps is not None:
            fields["eval_steps"] = args.eval_steps
        if args.chaos:
            fields["chaos"] = args.chaos.split(",")
        if args.chaos_slow is not None:
            fields["chaos_slow_s"] = args.chaos_slow
    if args.deadline is not None:
        fields["deadline_s"] = args.deadline
    if args.op == "invalidate":
        if not args.digest:
            print("client: invalidate needs --digest", file=sys.stderr)
            return 2
        fields["digest"] = args.digest
    try:
        with ServeClient(args.host, port,
                         timeout_s=args.timeout) as client:
            response = client.request(args.op, **fields)
    except ServeError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    text = json.dumps(response, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
    return exit_code_for(response)


def cmd_figures(args: argparse.Namespace) -> int:
    """Run figure reproductions and print their reports."""
    from repro.figures import FIGURES, get_figure

    figures = ([get_figure(n) for n in args.numbers]
               if args.numbers else list(FIGURES))
    for figure in figures:
        print(f"=== Figure {figure.number}: {figure.title} ===")
        print(figure.run())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Units: Cool Modules for HOT Languages — reproduction")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write pipeline events as JSON Lines to FILE")
    parser.add_argument("--metrics", action="store_true",
                        help="print counter/timer metrics as JSON on stderr")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the metrics JSON to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="print a cProfile report on stderr")
    parser.add_argument("--no-term-cache", action="store_true",
                        help="disable term memoization, hash-consing, and "
                             "the content-addressed unit caches")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist compiled units under DIR across "
                             "invocations (default: $REPRO_CACHE_DIR)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text, with_file=True):
        p = sub.add_parser(name, help=help_text)
        if with_file:
            p.add_argument("file", help="program file")
            p.add_argument("--lenient", action="store_true",
                           help="skip the Harper-Stone valuability check")
            p.add_argument("--load", action="append", metavar="LIB",
                           help="prepend a library file's top-level "
                                "definitions (repeatable)")
        p.set_defaults(fn=fn)
        return p

    run_p = add("run", cmd_run, "evaluate an untyped unit program")
    run_p.add_argument("--backend", choices=("interp", "machine", "pycode"),
                       default="interp",
                       help="evaluator: the environment interpreter, the "
                            "small-step machine, or the Python-closure "
                            "codegen backend (docs/PERFORMANCE.md)")
    add("check", cmd_check, "run the Figure 10 checks")
    add("typecheck", cmd_typecheck, "type-check a typed program")
    add("run-typed", cmd_run_typed, "check and run a typed program")

    trace = sub.add_parser(
        "trace", help="reduction traces and the trace-analysis toolkit")
    tsub = trace.add_subparsers(dest="trace_tool", required=True)
    steps = tsub.add_parser("steps", help="print a reduction trace")
    steps.add_argument("file", help="program file")
    steps.add_argument("--lenient", action="store_true",
                       help="skip the Harper-Stone valuability check")
    steps.add_argument("--load", action="append", metavar="LIB",
                       help="prepend a library file's top-level "
                            "definitions (repeatable)")
    steps.add_argument("--limit", type=int, default=500,
                       help="maximum reduction steps to show")
    steps.set_defaults(fn=cmd_trace)
    report = tsub.add_parser(
        "report", help="span tree, critical path, and count report "
                       "for a recorded trace")
    report.add_argument("trace_file", help="JSONL trace (from --trace)")
    report.add_argument("--top", type=int, default=10,
                        help="how many spans to rank by self time")
    report.add_argument("--max-depth", type=int, default=None,
                        help="truncate the span tree at this depth")
    report.add_argument("--min-spans", type=int, default=0,
                        help="fail unless the trace holds at least this "
                             "many spans (CI smoke gate)")
    report.set_defaults(fn=cmd_trace_report)
    diff = tsub.add_parser(
        "diff", help="per-kind event-count deltas between two traces "
                     "or metrics files; nonzero exit on regression")
    diff.add_argument("base", help="baseline trace JSONL or metrics JSON")
    diff.add_argument("current", help="current trace JSONL or metrics JSON")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative growth tolerated per kind "
                           "(0.10 = 10%%)")
    diff.add_argument("--strict", action="store_true",
                      help="also fail when kinds appear or vanish")
    diff.set_defaults(fn=cmd_trace_diff)
    flame = tsub.add_parser(
        "flame", help="collapsed stacks (flamegraph.pl/speedscope input) "
                      "from a recorded trace")
    flame.add_argument("trace_file", help="JSONL trace (from --trace)")
    flame.add_argument("-o", "--output", default=None,
                       help="write stacks to a file instead of stdout")
    flame.set_defaults(fn=cmd_trace_flame)

    add("compile", cmd_compile, "print the Figure 12 compilation")
    add("link", cmd_link, "statically link (flatten + optimize)")
    demo = add("demo", cmd_demo,
               "run every pipeline stage (check, link, compile, "
               "archive, machine, interpreter) on one program")
    demo.add_argument("--limit", type=int, default=1_000_000,
                      help="maximum machine reduction steps")
    demo.add_argument("--backend", choices=("interp", "pycode"),
                      default="interp",
                      help="with pycode, also run the Python-closure "
                           "backend and hold it to the interpreter's "
                           "result")
    batch = sub.add_parser(
        "batch", help="run every program in a directory, each under a "
                      "fresh resource budget (docs/ROBUSTNESS.md)")
    batch.add_argument("directory", help="directory of program files")
    batch.add_argument("--pattern", default="*.scm",
                       help="glob for program files (default: *.scm)")
    batch.add_argument("--out", metavar="FILE", default=None,
                       help="write records as JSON Lines to FILE "
                            "(default: stdout)")
    batch.add_argument("--lenient", action="store_true",
                       help="skip the Harper-Stone valuability check")
    batch.add_argument("--eval-steps", type=int, default=1_000_000,
                       help="per-item interpreter step cap")
    batch.add_argument("--machine-steps", type=int, default=1_000_000,
                       help="per-item machine reduction cap")
    batch.add_argument("--subst-nodes", type=int, default=None,
                       help="per-item substitution node cap")
    batch.add_argument("--expand-fuel", type=int, default=None,
                       help="per-item type-expansion unfolding cap")
    batch.add_argument("--max-depth", type=int, default=10_000,
                       help="per-item nesting/recursion depth cap")
    batch.add_argument("--deadline", type=float, default=None,
                       help="per-item wall-clock deadline in seconds")
    batch.add_argument("--retry", type=int, default=0,
                       help="extra attempts (with backoff) for archive "
                            "retrieval failures")
    batch.add_argument("--fail-fast", action="store_true",
                       help="stop at the first failing item and exit "
                            "nonzero instead of recording it")
    batch.add_argument("--metrics-snapshot", metavar="FILE", default=None,
                       help="write the batch's merged metrics1 snapshot "
                            "(stage latency histograms) to FILE")
    batch.add_argument("--backend", choices=("interp", "machine", "pycode"),
                       default="interp",
                       help="evaluator for the eval stage of every item")
    batch.set_defaults(fn=cmd_batch)
    metrics = sub.add_parser(
        "metrics", help="merge, report, and gate metrics1 snapshots "
                        "(docs/METRICS.md)")
    msub = metrics.add_subparsers(dest="metrics_tool", required=True)
    mreport = msub.add_parser(
        "report", help="merge snapshots and render p50/p90/p99 latency "
                       "tables (or Prometheus exposition)")
    mreport.add_argument("files", nargs="+",
                         help="metrics1 JSON files (from --metrics-out, "
                              "batch --metrics-snapshot, bench --snapshot)")
    mreport.add_argument("--prometheus", action="store_true",
                         help="emit Prometheus text exposition instead "
                              "of tables")
    mreport.set_defaults(fn=cmd_metrics_report)
    mdiff = msub.add_parser(
        "diff", help="histogram count/latency regression gate between "
                     "two snapshots; nonzero exit on regression")
    mdiff.add_argument("base", help="baseline metrics1 JSON")
    mdiff.add_argument("current", help="current metrics1 JSON")
    mdiff.add_argument("--threshold", type=float, default=0.10,
                       help="relative growth tolerated per histogram "
                            "count (0.10 = 10%%)")
    mdiff.add_argument("--latency-threshold", type=float, default=None,
                       help="also gate p50/p99 growth past this relative "
                            "threshold (off by default: wall-clock "
                            "percentiles are machine-dependent)")
    mdiff.add_argument("--latency-floor", type=float, default=0.001,
                       help="ignore latency regressions below this many "
                            "seconds (default: 1ms)")
    mdiff.add_argument("--strict", action="store_true",
                       help="also fail when histograms appear or vanish")
    mdiff.set_defaults(fn=cmd_metrics_diff)
    bench = sub.add_parser(
        "bench", help="time the pipeline cached vs --no-term-cache and "
                      "write BENCH_results.json")
    bench.add_argument("--quick", action="store_true",
                       help="small sizes, one repeat (CI smoke)")
    bench.add_argument("--out", metavar="FILE",
                       default="BENCH_results.json",
                       help="where to write the results JSON")
    bench.add_argument("--snapshot", metavar="FILE", default=None,
                       help="also write a counters snapshot (with "
                            "cache.* activity) usable by 'trace diff'")
    bench.add_argument("--backend", choices=("interp", "pycode"),
                       default="pycode",
                       help="comparison backend for the per-case eval "
                            "column (default: pycode)")
    bench.add_argument("--serve", action="store_true",
                       help="load-test an in-process link server instead: "
                            "cold/warm request latency (p50/p99) and "
                            "concurrent throughput into the results file "
                            "under 'serve' (docs/SERVING.md)")
    bench.add_argument("--processes", type=int, default=0,
                       help="with --serve: bench a server running N "
                            "worker processes; the row merges under "
                            "'serve-processes' next to the thread row")
    bench.set_defaults(fn=cmd_bench)
    serve = sub.add_parser(
        "serve", help="run the link-server daemon: compile/check/link/run "
                      "requests over newline-delimited JSON "
                      "(docs/SERVING.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port (default 0: ephemeral, announced on "
                            "stdout)")
    serve.add_argument("--port-file", metavar="FILE", default=None,
                       help="also write the bound port to FILE (for "
                            "scripts)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads executing requests")
    serve.add_argument("--processes", type=int, default=0,
                       help="execute requests in N spawned worker "
                            "processes instead of threads (scales past "
                            "the GIL on multi-core hosts; warm state "
                            "shared via the disk cache tier; "
                            "docs/SERVING.md)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="requests allowed to wait beyond the workers; "
                            "past that, fast 'overloaded' responses")
    serve.add_argument("--deadline", type=float, default=10.0,
                       help="default per-request wall-clock deadline "
                            "(seconds)")
    serve.add_argument("--max-deadline", type=float, default=60.0,
                       help="ceiling on request-supplied deadlines")
    serve.add_argument("--ttl", type=float, default=None,
                       help="expire shared-store entries older than this "
                            "many seconds")
    serve.add_argument("--allow-chaos", action="store_true",
                       help="honor request-carried fault injection "
                            "(tests/CI only)")
    serve.add_argument("--chaos", action="store_true",
                       help="run the fault-injection sweep instead of "
                            "serving: every fault races healthy requests "
                            "on an in-process server, with differential "
                            "and store-isolation asserts")
    serve.set_defaults(fn=cmd_serve)
    client = sub.add_parser(
        "client", help="send one request to a running link server")
    client.add_argument("op", choices=("ping", "metrics", "stats",
                                       "flush", "invalidate", "check",
                                       "link", "run"),
                        help="request op")
    client.add_argument("file", nargs="?", default=None,
                        help="program file (check/link/run; stdin when "
                             "omitted)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=None)
    client.add_argument("--port-file", metavar="FILE", default=None,
                        help="read the port a 'repro serve --port-file' "
                             "daemon announced")
    client.add_argument("--backend",
                        choices=("interp", "machine", "pycode"),
                        default="pycode")
    client.add_argument("--lenient", action="store_true")
    client.add_argument("--archive", action="store_true",
                        help="round-trip the program's unit through the "
                             "dynlink archive before evaluating")
    client.add_argument("--retries", type=int, default=0,
                        help="archive retry attempts")
    client.add_argument("--deadline", type=float, default=None,
                        help="per-request wall-clock deadline (seconds)")
    client.add_argument("--eval-steps", type=int, default=None,
                        help="per-request eval step cap")
    client.add_argument("--chaos", default=None,
                        help="comma-separated fault names to inject "
                             "(server must allow chaos)")
    client.add_argument("--chaos-slow", type=float, default=None,
                        help="slow-load stall seconds")
    client.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout (seconds)")
    client.add_argument("--out", metavar="FILE", default=None,
                        help="also write the response JSON to FILE")
    client.set_defaults(fn=cmd_client)
    repl = sub.add_parser("repl", help="interactive session")
    repl.set_defaults(fn=cmd_repl)
    figures = sub.add_parser("figures", help="run figure reproductions")
    figures.add_argument("numbers", nargs="*", type=int,
                         help="figure numbers (default: all)")
    figures.set_defaults(fn=cmd_figures)
    return parser


def _run_observed(args: argparse.Namespace) -> int:
    """Run the selected subcommand under an observability collector."""
    from repro import obs

    collector = obs.Collector()
    profiler = obs.ProfileSession() if args.profile else None
    try:
        with obs.collecting(collector):
            if profiler is not None:
                profiler.profile.enable()
            try:
                status = args.fn(args)
            finally:
                if profiler is not None:
                    profiler.profile.disable()
    finally:
        # Flush trace/metrics even when the command failed: the events
        # leading up to a failure are the interesting ones.
        if args.trace:
            trace_events = list(collector.events)
            if collector.dropped_kinds:
                # Truncation trailer: one metric.dropped event per
                # dropped kind, so a reloaded report can say what the
                # max_events bound cut (not just how much).
                tail_t = trace_events[-1].t if trace_events else 0.0
                for offset, kind in enumerate(
                        sorted(collector.dropped_kinds)):
                    trace_events.append(obs.TraceEvent(
                        "metric.dropped", collector._seq + offset, tail_t,
                        {"of": kind,
                         "count": collector.dropped_kinds[kind]}))
            written = obs.write_jsonl(trace_events, args.trace)
            print(f"trace: {written} events -> {args.trace}",
                  file=sys.stderr)
        if args.metrics_out:
            obs.write_metrics(collector, args.metrics_out)
        if args.metrics:
            import json as _json

            print(_json.dumps(collector.metrics(), indent=2),
                  file=sys.stderr)
        if profiler is not None:
            print(profiler.report(), file=sys.stderr)
    return status


_TRACE_TOOLS = ("steps", "report", "diff", "flame")
_VALUE_FLAGS = ("--trace", "--metrics-out", "--cache-dir")


def _normalize_argv(argv: list[str]) -> list[str]:
    """Back-compat shim: ``repro trace FILE`` means ``trace steps FILE``.

    The ``trace`` subcommand grew tools (``report``/``diff``/``flame``);
    a bare ``trace FILE`` still has to print the reduction trace, so
    when the token after ``trace`` is not a tool name we insert
    ``steps``.  Global flags before the subcommand are skipped
    (value-taking ones consume their argument unless spelled
    ``--flag=value``).
    """
    out = list(argv)
    i = 0
    while i < len(out):
        tok = out[i]
        if tok in _VALUE_FLAGS:
            i += 2
            continue
        if tok.startswith("-"):
            i += 1
            continue
        if tok == "trace":
            nxt = out[i + 1] if i + 1 < len(out) else None
            if nxt is not None and nxt not in _TRACE_TOOLS \
                    and nxt not in ("-h", "--help"):
                out.insert(i + 1, "steps")
        break
    return out


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    import os
    from contextlib import ExitStack

    from repro.lang import terms as _terms
    from repro.units.cache import unit_cache_scope

    argv = sys.argv[1:] if argv is None else list(argv)
    args = build_parser().parse_args(_normalize_argv(argv))
    observed = (args.trace or args.metrics or args.metrics_out
                or args.profile)
    try:
        with ExitStack() as stack:
            if args.no_term_cache:
                prev = _terms.set_caching(False)
                stack.callback(_terms.set_caching, prev)
            else:
                # One invocation = one fresh cache scope: in-process
                # callers of main() (tests, scripting) never see one
                # another's cache state.
                cache_dir = (args.cache_dir
                             or os.environ.get("REPRO_CACHE_DIR") or None)
                stack.enter_context(unit_cache_scope(cache_dir))
            if observed:
                return _run_observed(args)
            return args.fn(args)
    except BudgetExceeded as err:
        # Before LangError: BudgetExceeded is a LangError, but resource
        # exhaustion gets its own exit code so callers can tell "the
        # program is wrong" (1) from "the program ran out" (3).
        print(f"error: {err}", file=sys.stderr)
        return 3
    except LangError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
