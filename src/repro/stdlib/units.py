"""The standard-library unit sources and their registry.

Every entry is a self-contained UNITd unit: no imports except where a
dependency is the point (``logger`` imports its sink, ``memo`` wraps a
function you supply).  All state is per-instance — linking a unit
twice yields two independent instances, as Section 2 promises.
"""

from __future__ import annotations

from repro.lang.interp import Interpreter
from repro.lang.values import UnitValue

ASSOC = """
    (unit (import) (export assoc-empty assoc-put assoc-get assoc-has?
                           assoc-remove assoc-size)
      ;; Association lists keyed by strings, persistent-style: every
      ;; operation returns a new list.
      (define assoc-empty (lambda () (list)))
      (define assoc-put (lambda (al key value)
        (cons (cons key value) (assoc-remove al key))))
      (define assoc-get (lambda (al key default)
        (if (null? al)
            default
            (if (string=? (car (car al)) key)
                (cdr (car al))
                (assoc-get (cdr al) key default)))))
      (define assoc-has? (lambda (al key)
        (if (null? al)
            #f
            (if (string=? (car (car al)) key)
                #t
                (assoc-has? (cdr al) key)))))
      (define assoc-remove (lambda (al key)
        (if (null? al)
            al
            (if (string=? (car (car al)) key)
                (assoc-remove (cdr al) key)
                (cons (car al) (assoc-remove (cdr al) key))))))
      (define assoc-size (lambda (al) (length al)))
      (void))
"""

STACK = """
    (unit (import) (export stack-new stack-push! stack-pop! stack-peek
                           stack-empty?)
      ;; Mutable stacks as boxed lists.
      (define stack-new (lambda () (box (list))))
      (define stack-push! (lambda (s v)
        (set-box! s (cons v (unbox s)))))
      (define stack-pop! (lambda (s)
        (if (null? (unbox s))
            (error "stack-pop!: empty stack")
            (let ((top (car (unbox s))))
              (begin (set-box! s (cdr (unbox s))) top)))))
      (define stack-peek (lambda (s)
        (if (null? (unbox s))
            (error "stack-peek: empty stack")
            (car (unbox s)))))
      (define stack-empty? (lambda (s) (null? (unbox s))))
      (void))
"""

QUEUE = """
    (unit (import) (export queue-new queue-put! queue-take! queue-empty?
                           queue-size)
      ;; Two-list functional queue behind a box.
      (define queue-new (lambda () (box (cons (list) (list)))))
      (define queue-put! (lambda (q v)
        (let ((state (unbox q)))
          (set-box! q (cons (car state) (cons v (cdr state)))))))
      (define queue-take! (lambda (q)
        (let ((state (unbox q)))
          (if (null? (car state))
              (if (null? (cdr state))
                  (error "queue-take!: empty queue")
                  (let ((flipped (reverse (cdr state))))
                    (begin
                      (set-box! q (cons (cdr flipped) (list)))
                      (car flipped))))
              (begin
                (set-box! q (cons (cdr (car state)) (cdr state)))
                (car (car state)))))))
      (define queue-empty? (lambda (q)
        (let ((state (unbox q)))
          (if (null? (car state)) (null? (cdr state)) #f))))
      (define queue-size (lambda (q)
        (let ((state (unbox q)))
          (+ (length (car state)) (length (cdr state))))))
      (void))
"""

COUNTER = """
    (unit (import) (export counter-next! counter-reset! counter-value)
      ;; A single per-instance counter; link twice for two counters.
      (define state (box 0))
      (define counter-next! (lambda ()
        (begin (set-box! state (+ (unbox state) 1)) (unbox state))))
      (define counter-reset! (lambda () (set-box! state 0)))
      (define counter-value (lambda () (unbox state)))
      (void))
"""

LOGGER = """
    (unit (import sink) (export log! log-count)
      ;; A leveled logger writing through an imported sink procedure.
      (define count (box 0))
      (define log! (lambda (level message)
        (begin
          (set-box! count (+ (unbox count) 1))
          (sink (string-append "[" level "] " message)))))
      (define log-count (lambda () (unbox count)))
      (void))
"""

MATHX = """
    (unit (import) (export gcd lcm expt fact fib sum-to)
      (define gcd (lambda (a b)
        (if (zero? b) (abs a) (gcd b (modulo a b)))))
      (define lcm (lambda (a b)
        (if (zero? (* a b)) 0 (quotient (abs (* a b)) (gcd a b)))))
      (define expt (lambda (base power)
        (if (zero? power) 1 (* base (expt base (- power 1))))))
      (define fact (lambda (n)
        (if (zero? n) 1 (* n (fact (- n 1))))))
      (define fib (lambda (n)
        (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
      (define sum-to (lambda (n)
        (if (zero? n) 0 (+ n (sum-to (- n 1))))))
      (void))
"""

MEMO = """
    (unit (import fn) (export memoized stats)
      ;; Memoize a string->value function with a per-instance table.
      (define table (makeStringHashTable))
      (define hits (box 0))
      (define misses (box 0))
      (define memoized (lambda (key)
        (if (hash-has? table key)
            (begin (set-box! hits (+ (unbox hits) 1))
                   (hash-get table key))
            (let ((value (fn key)))
              (begin
                (set-box! misses (+ (unbox misses) 1))
                (hash-put! table key value)
                value)))))
      (define stats (lambda () (list (unbox hits) (unbox misses))))
      (void))
"""

#: Registry: name -> (source, one-line description).
STDLIB_SOURCES: dict[str, tuple[str, str]] = {
    "assoc": (ASSOC, "persistent string-keyed association lists"),
    "stack": (STACK, "mutable stacks (boxed lists)"),
    "queue": (QUEUE, "amortized O(1) two-list queues"),
    "counter": (COUNTER, "a per-instance counter"),
    "logger": (LOGGER, "a leveled logger over an imported sink"),
    "mathx": (MATHX, "gcd/lcm/expt/fact/fib/sum-to"),
    "memo": (MEMO, "memoization of an imported function"),
}


def catalog() -> tuple[str, ...]:
    """Names of every stdlib unit."""
    return tuple(STDLIB_SOURCES)


def describe(name: str) -> str:
    """One-line description of a stdlib unit."""
    return STDLIB_SOURCES[name][1]


def load(interp: Interpreter, name: str) -> UnitValue:
    """Evaluate a stdlib unit's source to a unit value."""
    source, _ = STDLIB_SOURCES[name]
    value = interp.run(source, origin=f"<stdlib:{name}>")
    assert isinstance(value, UnitValue)
    return value
