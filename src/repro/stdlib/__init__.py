"""A small standard library of reusable units.

The paper's thesis is that units enable an ecosystem of independently
developed, reusable parts.  This package is that ecosystem in
miniature: a handful of general-purpose UNITd units (association
lists, stacks, queues, counters, a logger, math extras) published
through a registry, each linkable into any program — including
multiple instances with separate state.

Use :func:`load` to get a unit value, :func:`catalog` to browse, or
pull the raw sources from :data:`repro.stdlib.units.STDLIB_SOURCES`
to link them with the graph builder.
"""

from repro.stdlib.units import STDLIB_SOURCES, catalog, describe, load

__all__ = ["STDLIB_SOURCES", "catalog", "describe", "load"]
