"""Registry: every figure of the paper mapped to executable code.

The paper's evaluation artifacts are its 21 figures — worked examples
(1–8, 12, 20, 21) and formal systems (9–11, 13–19).  Each entry here
reproduces one figure: examples run end to end; formal systems are
exercised on their defining cases (acceptance *and* rejection).  Each
``run`` callable returns a human-readable report string and raises if
the reproduction no longer matches the paper.

The benchmark harness (``benchmarks/``) times these reproductions; the
test suite asserts their observable claims; ``EXPERIMENTS.md`` records
the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Figure:
    """One paper figure and the code that reproduces it."""

    number: int
    title: str
    claim: str
    run: Callable[[], str]


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(f"figure reproduction failed: {message}")


# ---------------------------------------------------------------------------
# Figures 1–3: the phone book
# ---------------------------------------------------------------------------


def figure_1() -> str:
    """The atomic Database unit type-checks with the Figure 1 interface."""
    from repro.phonebook.units import DATABASE
    from repro.unitc.run import typecheck

    sig = typecheck(DATABASE)
    _expect(sig.timport_names == ("info",), "Database imports info")
    _expect(sig.vimport_names == ("error",), "Database imports error")
    _expect(sig.texport_names == ("db",), "Database exports db")
    for name in ("new", "insert", "delete"):
        _expect(name in sig.vexport_names, f"Database exports {name}")
    return f"Database : {sig}"


def figure_2() -> str:
    """PhoneBook links Database+NumberInfo, hides delete, re-exports."""
    from repro.phonebook.program import build_phonebook
    from repro.unitc.run import typecheck

    sig = typecheck(build_phonebook())
    _expect(sig.vimport_names == ("error",), "error passes through")
    _expect("delete" not in sig.vexport_names, "delete is hidden")
    _expect({"db", "info"} <= set(sig.texport_names),
            "db and info are re-exported")
    return f"PhoneBook : {sig}"


def figure_3() -> str:
    """IPB is a complete program; invoking it returns a bool."""
    from repro.phonebook.program import run_ipb

    result, output = run_ipb()
    _expect(result is True, "IPB returns the bool from openBook")
    _expect("entries: 3" in output, "Main inserted three entries")
    return f"IPB -> {result}; transcript:\n{output}"


def figure_4() -> str:
    """Bad is rejected: two db types with different sources."""
    from repro.lang.errors import TypeCheckError
    from repro.unitc.run import typecheck

    # Gui defines its own db; its clause cannot give openBook's type a
    # source for db without colliding with PhoneBook's provided db.
    bad_with_collision = """
        (compound/t (import) (export)
          (link ((unit/t (import) (export (type db) (val new (-> db)))
                   (datatype db (mk un void) (mk2 un2 void) first?)
                   (define new (-> db) (lambda () (mk (void))))
                   (void))
                 (with)
                 (provides (type db) (val new (-> db))))
                ((unit/t (import) (export (type db)
                                          (val openBook (-> db bool)))
                   (datatype db (mk un void) (mk2 un2 void) first?)
                   (define openBook (-> db bool) (lambda ((d db)) #t))
                   (void))
                 (with)
                 (provides (type db) (val openBook (-> db bool))))))
    """
    try:
        typecheck(bad_with_collision)
    except TypeCheckError as err:
        first = str(err)
    else:
        raise AssertionError("Bad (collision form) was accepted")

    bad_without_source = """
        (compound/t (import) (export)
          (link ((unit/t (import) (export (type db) (val new (-> db)))
                   (datatype db (mk un void) (mk2 un2 void) first?)
                   (define new (-> db) (lambda () (mk (void))))
                   (void))
                 (with)
                 (provides (type db) (val new (-> db))))
                ((unit/t (import) (export (type db)
                                          (val openBook (-> db bool)))
                   (datatype db (mk un void) (mk2 un2 void) first?)
                   (define openBook (-> db bool) (lambda ((d db)) #t))
                   (void))
                 (with)
                 (provides (val openBook (-> db bool))))))
    """
    try:
        typecheck(bad_without_source)
    except TypeCheckError as err:
        second = str(err)
    else:
        raise AssertionError("Bad (no-source form) was accepted")
    return ("Bad rejected both ways:\n  [collision] " + first
            + "\n  [no source] " + second)


def figure_5() -> str:
    """MakeIPB abstracts IPB over its GUI via a signature-typed function."""
    from repro.phonebook.program import make_ipb_program
    from repro.types.types import BOOL
    from repro.unitc.check import base_tyenv, check_texpr

    program = make_ipb_program(expert_mode=True)
    ty = check_texpr(program, base_tyenv())
    _expect(ty == BOOL, "the launched program has type bool")
    return "MakeIPB(ExpertGui) : bool — linkage verified from the GUI " \
        "signature alone"


def figure_6() -> str:
    """Starter selects a GUI at run time and launches the program."""
    from repro.phonebook.program import run_starter

    result_e, out_e = run_starter(expert_mode=True)
    result_n, out_n = run_starter(expert_mode=False)
    _expect(result_e is True and result_n is True, "both starters run")
    _expect("expert phone book" in out_e, "expert GUI selected")
    _expect("welcome to your phone book!" in out_n, "novice GUI selected")
    return ("Starter/expert:\n" + out_e
            + "Starter/novice:\n" + out_n)


def figure_7() -> str:
    """Dynamic linking: a loader extension retrieved, verified, linked."""
    from repro.lang.errors import ArchiveError
    from repro.phonebook.program import run_loader_demo

    result, output = run_loader_demo()
    _expect(result is True, "loader demo runs")
    _expect("entries: 2" in output, "loader added a contact")
    try:
        run_loader_demo("broken-loader")
    except ArchiveError as err:
        rejection = str(err)
    else:
        raise AssertionError("broken loader was linked")
    return (f"loader installed a contact; transcript:\n{output}"
            f"broken loader rejected: {rejection}")


def figure_8() -> str:
    """Graphical reduction: PhoneBook's compound merges into one box."""
    from repro.lang.parser import parse_program
    from repro.lang.pretty import pretty
    from repro.units.reduce import reduce_compound_expr

    compound = parse_program("""
        (compound (import error) (export new insert numInfo)
          (link ((unit (import numInfo error) (export new insert)
                   (define new (lambda () (box 0)))
                   (define insert (lambda (db k v)
                     (set-box! db (+ (unbox db) 1))))
                   (void))
                 (with numInfo error) (provides new insert))
                ((unit (import) (export numInfo)
                   (define numInfo (lambda (n) n))
                   (void))
                 (with) (provides numInfo))))
    """)
    merged = reduce_compound_expr(compound)
    _expect(merged.imports == ("error",), "merged unit imports error")
    _expect(set(merged.defined) >= {"new", "insert", "numInfo"},
            "definitions merged")
    return "merged unit:\n" + pretty(merged)


def figure_9() -> str:
    """The UNITd grammar parses (and misparses) as Figure 9 specifies."""
    from repro.lang.errors import ParseError
    from repro.lang.parser import parse_program

    parse_program("""
        (invoke
          (compound (import) (export)
            (link ((unit (import a) (export b) (define b 1) b)
                   (with a) (provides b))
                  ((unit (import b) (export a) (define a 2) a)
                   (with b) (provides a))))
          (x 5))
    """)
    rejected = 0
    for bad in ("(unit (import))",
                "(compound (import) (export) (link))",
                "(invoke u (a))",
                "(unit (import) (export) 1 (define x 2))"):
        try:
            parse_program(bad)
        except ParseError:
            rejected += 1
    _expect(rejected == 4, "malformed unit syntax rejected")
    return "grammar accepts Figure 9 forms; 4/4 malformed variants rejected"


def figure_10() -> str:
    """The context-sensitive checks accept/reject per Figure 10."""
    from repro.lang.errors import CheckError
    from repro.lang.parser import parse_program
    from repro.units.check import check_program

    check_program(parse_program("""
        (unit (import a) (export f)
          (define f (lambda () a))
          (f))
    """))
    rejected = 0
    for bad in (
            "(unit (import a a) (export) 1)",
            "(unit (import) (export ghost) 1)",
            '(unit (import) (export x) (define x (display "e")) 1)',
            """(compound (import) (export)
                 (link ((unit (import) (export) 1) (with q) (provides))
                       ((unit (import) (export) 2) (with) (provides))))"""):
        try:
            check_program(parse_program(bad))
        except CheckError:
            rejected += 1
    _expect(rejected == 4, "Figure 10 violations rejected")
    return "Figure 10 checks: well-formed unit accepted; 4/4 violations " \
        "rejected"


def figure_11() -> str:
    """The reduction rules: invoke -> letrec; compound -> merged unit."""
    from repro.lang.machine import Machine
    from repro.lang.parser import parse_program
    from repro.lang.pretty import show

    machine = Machine()
    expr = parse_program("""
        (invoke
          (compound (import) (export)
            (link ((unit (import) (export x) (define x 3) (void))
                   (with) (provides x))
                  ((unit (import x) (export) (* x x))
                   (with x) (provides)))))
    """)
    terms = machine.trace(expr)
    value = machine.eval(expr)
    from repro.lang.ast import Lit

    _expect(isinstance(value, Lit) and value.value == 9,
            "program reduces to 9")
    lines = [show(t) for t in terms[:4]]
    return "first reduction steps:\n" + "\n".join(
        f"  {line[:100]}" for line in lines) + f"\n... -> {show(value)}"


def figure_12() -> str:
    """Compilation: the even/odd unit becomes a function over cells."""
    from repro.lang.interp import Interpreter
    from repro.lang.parser import parse_program
    from repro.lang.pretty import pretty
    from repro.units.compile import compile_expr

    program = parse_program("""
        (invoke
          (unit (import even?) (export odd?)
            (define odd? (lambda (n)
              (if (zero? n) #f (even? (- n 1)))))
            (odd? 19))
          (even? (lambda (n) (zero? (modulo n 2)))))
    """)
    compiled = compile_expr(program)
    interp = Interpreter()
    result = interp.eval(compiled)
    _expect(result is True, "(odd? 19) is true")
    return "compiled form (no unit forms remain):\n" + pretty(compiled)


def figure_13() -> str:
    """The UNITc grammar: types, kinds, datatypes, signatures."""
    from repro.unitc.parser import parse_typed_program

    expr = parse_typed_program("""
        (unit/t (import (type info *) (val error (-> str void)))
                (export (type db) (val new (-> db)))
          (datatype db (mk un (box int)) (mk2 un2 void) db?)
          (define new (-> db) (lambda () (mk (box 0))))
          (void))
    """)
    _expect(expr.timports[0][0] == "info", "kinded type import parsed")
    return "UNITc syntax parsed: kinds, typed interfaces, datatypes"


def figure_14() -> str:
    """Signature subtyping: all four conditions, plus rejections."""
    from repro.types.parser import parse_sig_text
    from repro.types.subtype import sig_subtype

    general = parse_sig_text("""
        (sig (import (val err (-> str void))) (export (val a int)) void)
    """)
    specific = parse_sig_text("""
        (sig (import) (export (val a int) (val b str)) void)
    """)
    _expect(sig_subtype(specific, general),
            "fewer imports + more exports is a subtype")
    _expect(not sig_subtype(general, specific), "and not conversely")
    return "Figure 14 subtyping verified (fewer imports, more exports, " \
        "contravariant imports, covariant exports)"


def figure_15() -> str:
    """UNITc type checking: the four judgments on their defining cases."""
    from repro.lang.errors import TypeCheckError
    from repro.unitc.run import typecheck

    sig = typecheck("""
        (unit/t (import (type t) (val v t)) (export (val f (-> t t)))
          (define f (-> t t) (lambda ((x t)) x))
          (f v))
    """)
    rejected = 0
    for bad in (
            '(unit/t (import) (export) (define x int "s") (void))',
            "(invoke/t (unit/t (import (type t)) (export) (void)))",
            """(compound/t (import) (export)
                 (link ((unit/t (import (val n int)) (export) n)
                        (with) (provides))
                       ((unit/t (import) (export) 1)
                        (with) (provides))))"""):
        try:
            typecheck(bad)
        except TypeCheckError:
            rejected += 1
    _expect(rejected == 3, "Figure 15 violations rejected")
    return f"unit rule: {sig}; 3/3 violations rejected"


def figure_16() -> str:
    """UNITe syntax: type equations and depends clauses parse."""
    from repro.types.parser import parse_sig_text
    from repro.unitc.parser import parse_typed_program

    unit = parse_typed_program("""
        (unit/t (import (type a)) (export (type b))
          (type b (-> a a))
          (void))
    """)
    _expect(unit.equations[0].name == "b", "equation parsed")
    sig = parse_sig_text(
        "(sig (import (type a)) (export (type b)) (depends (b a)) void)")
    _expect(sig.depends == (("b", "a"),), "depends clause parsed")
    return "UNITe syntax parsed: equations and dependency clauses"


def figure_17() -> str:
    """Dependency-aware subtyping: ascription may add, never hide, deps."""
    from repro.types.parser import parse_sig_text
    from repro.types.subtype import sig_subtype

    with_dep = parse_sig_text(
        "(sig (import (type a)) (export (type b)) (depends (b a)) void)")
    without_dep = parse_sig_text(
        "(sig (import (type a)) (export (type b)) void)")
    _expect(sig_subtype(without_dep, with_dep),
            "dependency-free unit satisfies a depending signature")
    _expect(not sig_subtype(with_dep, without_dep),
            "a real dependency cannot be hidden by ascription")
    return "Figure 17 dependency subtyping verified"


def figure_18() -> str:
    """Abbreviation expansion, including the sig-shadowing side
    condition."""
    from repro.types.parser import parse_type_text
    from repro.types.pretty import show_type
    from repro.unite.expand import expand_type

    eqs = {"env": parse_type_text("(-> name value)"),
           "stack": parse_type_text("(* env env)")}
    out = expand_type(parse_type_text("(-> stack env)"), eqs)
    _expect(show_type(out)
            == "(-> (* (-> name value) (-> name value)) (-> name value))",
            "nested expansion")
    shadowed = expand_type(
        parse_type_text("(sig (import (type env) (val x env)) (export) void)"),
        eqs)
    _expect("(val x env)" in show_type(shadowed),
            "sig-bound env shadows the equation")
    return f"expansion: (-> stack env) => {show_type(out)}"


def figure_19() -> str:
    """UNITe checking: dependencies computed, link cycles rejected."""
    from repro.lang.errors import TypeCheckError
    from repro.unitc.run import typecheck

    sig = typecheck("""
        (unit/t (import (type a)) (export (type b))
          (type b (-> a a))
          (void))
    """)
    _expect(sig.depends == (("b", "a"),), "dependency computed")
    try:
        typecheck("""
            (compound/t (import) (export)
              (link ((unit/t (import (type a)) (export (type b))
                       (type b (-> a a)) (void))
                     (with (type a)) (provides (type b)))
                    ((unit/t (import (type b)) (export (type a))
                       (type a (-> b b)) (void))
                     (with (type b)) (provides (type a)))))
        """)
    except TypeCheckError as err:
        rejection = str(err)
    else:
        raise AssertionError("cyclic type linking accepted")
    return f"deps: {sig.depends}; cyclic link rejected: {rejection}"


def figure_20() -> str:
    """Translucent types: env revealed as (-> name value)."""
    from repro.extensions.translucent import (
        TranslucentSig,
        translucent_subtype,
    )
    from repro.types.parser import parse_sig_text, parse_type_text

    sig = parse_sig_text("""
        (sig (import)
             (export (val extend (-> env name value env)))
             void)
    """)
    tsig = TranslucentSig(sig, (("env", parse_type_text("(-> name value)")),))
    expanded = tsig.expand()
    _expect(translucent_subtype(tsig, expanded)
            and translucent_subtype(expanded, tsig),
            "translucent signature is equivalent to its expansion")
    return f"Environment signature expands to: {expanded}"


def figure_21() -> str:
    """Hiding: env becomes opaque for untrusted clients."""
    from repro.extensions.hiding import hide_types, subtype_with_hiding
    from repro.extensions.translucent import TranslucentSig
    from repro.types.parser import parse_sig_text, parse_type_text
    from repro.types.subtype import sig_subtype

    sig = parse_sig_text("""
        (sig (import)
             (export (val extend (-> env name value env))
                     (val recExtend (-> env name value env)))
             void)
    """)
    tsig = TranslucentSig(sig, (("env", parse_type_text("(-> name value)")),))
    opaque = hide_types(tsig, ("env",))
    _expect(subtype_with_hiding(tsig, opaque),
            "RecEnv satisfies the opaque ascription")
    _expect(not sig_subtype(tsig.expand(), opaque),
            "without the extension the ascription does not hold")
    return f"untrusted view: {opaque}"


FIGURES: tuple[Figure, ...] = (
    Figure(1, "An atomic database unit",
           "Database encapsulates db behind an import/export interface",
           figure_1),
    Figure(2, "Linking units to form a compound unit",
           "PhoneBook hides delete and re-exports the rest", figure_2),
    Figure(3, "Linking units (complete program)",
           "IPB links PhoneBook and Gui cyclically; invoking returns bool",
           figure_3),
    Figure(4, "Illegal linking due to a type mismatch",
           "Bad is rejected: two db types with different sources",
           figure_4),
    Figure(5, "Abstracting over constituent units",
           "MakeIPB verifies linkage from the GUI signature alone",
           figure_5),
    Figure(6, "Linking and invoking other programs",
           "Starter selects a GUI at run time", figure_6),
    Figure(7, "Dynamic linking with invoke",
           "Loader extensions are verified and linked at run time",
           figure_7),
    Figure(8, "Graphical reduction",
           "A compound of known units merges into one atomic unit",
           figure_8),
    Figure(9, "Syntax for UNITd", "the grammar of Figure 9", figure_9),
    Figure(10, "Checking the form of UNITd expressions",
           "context-sensitive checks", figure_10),
    Figure(11, "Reducing UNITd expressions",
           "invoke -> letrec; compound -> merged unit", figure_11),
    Figure(12, "An example of UNITd compilation",
           "units compile to functions over reference cells", figure_12),
    Figure(13, "Syntax for UNITc", "typed unit grammar", figure_13),
    Figure(14, "Subtyping and subsumption in UNITc",
           "fewer imports, more exports; contra/co-variance", figure_14),
    Figure(15, "Type checking for UNITc",
           "the sig/invoke/unit/compound judgments", figure_15),
    Figure(16, "Syntax for UNITe",
           "type equations and depends clauses", figure_16),
    Figure(17, "Subtyping in UNITe signatures",
           "dependencies cannot be hidden by ascription", figure_17),
    Figure(18, "Expanding a type with respect to abbreviations",
           "the |tau|_D operator", figure_18),
    Figure(19, "Type checking for UNITe",
           "dependency computation and link-cycle rejection", figure_19),
    Figure(20, "Exposing information for a type",
           "translucent signatures are equivalent to their expansions",
           figure_20),
    Figure(21, "Hiding type information for an exported value",
           "the extended subtype relation opaques an abbreviation",
           figure_21),
)


def get_figure(number: int) -> Figure:
    """Fetch a figure's reproduction entry by number."""
    for figure in FIGURES:
        if figure.number == number:
            return figure
    raise KeyError(f"no figure {number}")


def run_all() -> dict[int, str]:
    """Run every figure reproduction; return number -> report."""
    return {figure.number: figure.run() for figure in FIGURES}
