"""Type checking for typed units — Figures 15 and 19.

This module implements the Figure 19 rules, of which Figure 15 is the
equation-free special case: a UNITc program simply has empty
``equations`` and empty ``depends`` clauses everywhere.

The four judgments:

* **signature well-formedness** — :func:`repro.types.wf.check_sig_wf`,
* **invoke** — the invoked expression must have a signature whose
  imports the ``with`` clause covers (a subtype check against the
  signature induced by the clause); the result type is the signature's
  initialization type with the supplied types substituted for the
  imported type variables,
* **unit** — interface distinctness, well-kinded type expressions,
  acyclic equations, definitions checked (with subsumption) at their
  declared types, the initialization expression's type (no
  subsumption) becoming the signature's ``tau_b``, and the dependency
  clause computed from the equations,
* **compound** — each constituent's signature must be a subtype of the
  signature its with/provides clause ascribes; the clause declarations
  must be drawn (name *and* declaration) from the compound's imports
  and the other constituent's provides — this is the "same source in
  the link graph" check that rejects Figure 4's ``Bad`` program — and
  the combined dependency declarations must not create a cycle.

Subsumption (``|-s`` in the paper) is permitted exactly where Figure 15
allows it: definition bodies, application arguments, and supplied
invoke values — "subsumption is used carefully so that type checking
is deterministic."
"""

from __future__ import annotations

from repro.lang.errors import TypeCheckError
from repro.obs import current as _obs_current
from repro.obs import span as _obs_span
from repro.types.kinds import OMEGA, kind_equal
from repro.types.pretty import show_type
from repro.types.subtype import join, sig_subtype, subtype
from repro.types.tyenv import TyEnv
from repro.types.types import (
    Arrow,
    BOOL,
    BoxType,
    INT,
    NUM,
    Product,
    STR,
    Sig,
    Type,
    VOID,
    free_type_vars,
    subst_type,
)
from repro.types.wf import check_sig_wf, check_type_wf
from repro.unitc.ast import (
    DatatypeDefn,
    TApp,
    TBox,
    TExpr,
    TIf,
    TLambda,
    TLet,
    TLetrec,
    TLit,
    TProj,
    TSeq,
    TSet,
    TSetBox,
    TTuple,
    TUnbox,
    TVar,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedLinkClause,
    TypedUnitExpr,
)
from repro.unitc.prims import TYPED_PRIMS
from repro.unite.depends import (
    check_equations_acyclic,
    compound_link_cycle_check,
    compute_compound_depends,
    compute_unit_depends,
)
from repro.unite.expand import expand_texpr, expand_type

#: Primitives that may appear applied inside a valuable definition.
PURE_PRIMS = frozenset({
    "+", "-", "*", "modulo", "quotient", "add1", "sub1", "abs", "max",
    "min", "=", "<", ">", "<=", ">=", "zero?", "not", "string-append",
    "string-append3", "string-append4", "string-append5",
    "string-length", "string=?", "substring", "number->string", "void",
})


def base_tyenv() -> TyEnv:
    """The initial typing environment: primitive values, no type vars."""
    return TyEnv({}, dict(TYPED_PRIMS))


def check_typed_program(expr: TExpr, env: TyEnv | None = None,
                        strict_valuable: bool = True) -> Type:
    """Type-check a complete typed program and return its type."""
    return check_texpr(expr, env if env is not None else base_tyenv(),
                       strict_valuable)


# ---------------------------------------------------------------------------
# Expression checking
# ---------------------------------------------------------------------------


def check_texpr(expr: TExpr, env: TyEnv,
                strict_valuable: bool = True) -> Type:
    """Synthesize the type of a typed expression."""
    if isinstance(expr, TLit):
        return _literal_type(expr)
    if isinstance(expr, TVar):
        return env.type_of(expr.name)
    if isinstance(expr, TLambda):
        for name, ty in expr.params:
            check_type_wf(ty, env)
        inner = env.with_values({name: ty for name, ty in expr.params})
        result = check_texpr(expr.body, inner, strict_valuable)
        return Arrow(tuple(ty for _, ty in expr.params), result)
    if isinstance(expr, TApp):
        return _check_app(expr, env, strict_valuable)
    if isinstance(expr, TIf):
        test = check_texpr(expr.test, env, strict_valuable)
        if not subtype(test, BOOL):
            raise TypeCheckError(
                f"if: test must be bool, got {show_type(test)}",
                expr.loc)
        then = check_texpr(expr.then, env, strict_valuable)
        orelse = check_texpr(expr.orelse, env, strict_valuable)
        joined = join(then, orelse)
        if joined is None:
            raise TypeCheckError(
                f"if: branch types are incompatible: {show_type(then)} "
                f"vs {show_type(orelse)}", expr.loc)
        return joined
    if isinstance(expr, TLet):
        bindings = {
            name: check_texpr(rhs, env, strict_valuable)
            for name, rhs in expr.bindings}
        return check_texpr(expr.body, env.with_values(bindings),
                           strict_valuable)
    if isinstance(expr, TLetrec):
        for _, ty, _ in expr.bindings:
            check_type_wf(ty, env)
        inner = env.with_values(
            {name: ty for name, ty, _ in expr.bindings})
        for name, ty, rhs in expr.bindings:
            actual = check_texpr(rhs, inner, strict_valuable)
            if not subtype(actual, ty):
                raise TypeCheckError(
                    f"letrec: '{name}' declared {show_type(ty)} but "
                    f"defined at {show_type(actual)}", expr.loc)
        return check_texpr(expr.body, inner, strict_valuable)
    if isinstance(expr, TSeq):
        result: Type = VOID
        for sub in expr.exprs:
            result = check_texpr(sub, env, strict_valuable)
        return result
    if isinstance(expr, TSet):
        declared = env.type_of(expr.name)
        actual = check_texpr(expr.expr, env, strict_valuable)
        if not subtype(actual, declared):
            raise TypeCheckError(
                f"set!: '{expr.name}' has type {show_type(declared)} but "
                f"was assigned {show_type(actual)}", expr.loc)
        return VOID
    if isinstance(expr, TTuple):
        return Product(tuple(
            check_texpr(sub, env, strict_valuable) for sub in expr.exprs))
    if isinstance(expr, TProj):
        target = check_texpr(expr.expr, env, strict_valuable)
        if not isinstance(target, Product):
            raise TypeCheckError(
                f"proj: expected a tuple, got {show_type(target)}",
                expr.loc)
        if not 0 <= expr.index < len(target.components):
            raise TypeCheckError(
                f"proj: index {expr.index} out of range for "
                f"{show_type(target)}", expr.loc)
        return target.components[expr.index]
    if isinstance(expr, TBox):
        return BoxType(check_texpr(expr.expr, env, strict_valuable))
    if isinstance(expr, TUnbox):
        target = check_texpr(expr.expr, env, strict_valuable)
        if not isinstance(target, BoxType):
            raise TypeCheckError(
                f"unbox: expected a box, got {show_type(target)}", expr.loc)
        return target.content
    if isinstance(expr, TSetBox):
        target = check_texpr(expr.box, env, strict_valuable)
        if not isinstance(target, BoxType):
            raise TypeCheckError(
                f"set-box!: expected a box, got {show_type(target)}",
                expr.loc)
        actual = check_texpr(expr.expr, env, strict_valuable)
        if not subtype(actual, target.content):
            raise TypeCheckError(
                f"set-box!: box holds {show_type(target.content)} but was "
                f"assigned {show_type(actual)}", expr.loc)
        return VOID
    if isinstance(expr, TypedUnitExpr):
        return check_typed_unit(expr, env, strict_valuable)
    if isinstance(expr, TypedCompoundExpr):
        return check_typed_compound(expr, env, strict_valuable)
    if isinstance(expr, TypedInvokeExpr):
        return check_typed_invoke(expr, env, strict_valuable)
    raise TypeCheckError(f"unknown typed expression: {expr!r}")


def _literal_type(expr: TLit) -> Type:
    value = expr.value
    if value is None:
        return VOID
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return NUM
    if isinstance(value, str):
        return STR
    raise TypeCheckError(f"unknown literal: {value!r}", expr.loc)


def _check_app(expr: TApp, env: TyEnv, strict_valuable: bool) -> Type:
    fn_ty = check_texpr(expr.fn, env, strict_valuable)
    if not isinstance(fn_ty, Arrow):
        raise TypeCheckError(
            f"application: operator has non-function type "
            f"{show_type(fn_ty)}", expr.loc)
    if len(expr.args) != len(fn_ty.domains):
        raise TypeCheckError(
            f"application: expected {len(fn_ty.domains)} arguments, got "
            f"{len(expr.args)}", expr.loc)
    for index, (arg, domain) in enumerate(zip(expr.args, fn_ty.domains)):
        actual = check_texpr(arg, env, strict_valuable)
        if not subtype(actual, domain):
            raise TypeCheckError(
                f"application: argument {index + 1} has type "
                f"{show_type(actual)}, expected {show_type(domain)}",
                expr.loc)
    return fn_ty.result


# ---------------------------------------------------------------------------
# Valuability for typed definitions
# ---------------------------------------------------------------------------


def is_tvaluable(expr: TExpr, unstable: frozenset[str]) -> bool:
    """Typed analogue of :func:`repro.units.valuable.is_valuable`.

    Constructor applications and pure-primitive applications of
    valuable arguments are valuable (following Harper–Stone), as is box
    allocation of a valuable content — allocation terminates and its
    effect is unobservable until the cell is shared.
    """
    if isinstance(expr, TLit):
        return True
    if isinstance(expr, TVar):
        return expr.name not in unstable
    if isinstance(expr, (TLambda, TypedUnitExpr)):
        return True
    if isinstance(expr, TIf):
        return (is_tvaluable(expr.test, unstable)
                and is_tvaluable(expr.then, unstable)
                and is_tvaluable(expr.orelse, unstable))
    if isinstance(expr, TSeq):
        return all(is_tvaluable(e, unstable) for e in expr.exprs)
    if isinstance(expr, TLet):
        inner = unstable - {name for name, _ in expr.bindings}
        return (all(is_tvaluable(rhs, unstable) for _, rhs in expr.bindings)
                and is_tvaluable(expr.body, inner))
    if isinstance(expr, TTuple):
        return all(is_tvaluable(e, unstable) for e in expr.exprs)
    if isinstance(expr, (TBox, TProj, TUnbox)):
        inner = expr.expr
        return is_tvaluable(inner, unstable)
    if isinstance(expr, TApp):
        if isinstance(expr.fn, TVar) and expr.fn.name in PURE_PRIMS \
                and expr.fn.name not in unstable:
            return all(is_tvaluable(a, unstable) for a in expr.args)
        if isinstance(expr.fn, TVar) and expr.fn.name.startswith("%ctor%"):
            return all(is_tvaluable(a, unstable) for a in expr.args)
        return False
    if isinstance(expr, TypedCompoundExpr):
        return (is_tvaluable(expr.first.expr, unstable)
                and is_tvaluable(expr.second.expr, unstable))
    return False


# ---------------------------------------------------------------------------
# The unit rule
# ---------------------------------------------------------------------------


def datatype_op_types(dt: DatatypeDefn) -> dict[str, Type]:
    """Types of the five operations a datatype definition introduces."""
    t = _tyvar(dt.name)
    return {
        dt.ctor1: Arrow((dt.ty1,), t),
        dt.dtor1: Arrow((t,), dt.ty1),
        dt.ctor2: Arrow((dt.ty2,), t),
        dt.dtor2: Arrow((t,), dt.ty2),
        dt.pred: Arrow((t,), BOOL),
    }


def _tyvar(name: str) -> Type:
    from repro.types.types import TyVar

    return TyVar(name)


def _require_distinct(names, what: str, loc=None) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise TypeCheckError(f"{what}: duplicate name '{name}'", loc)
        seen.add(name)


def _loc_fields(loc, **fields: object) -> dict[str, object]:
    """Span payload with the reader source location, when known."""
    if loc is not None:
        fields["loc"] = str(loc)
    return fields


def check_typed_unit(unit: TypedUnitExpr, env: TyEnv,
                     strict_valuable: bool = True) -> Sig:
    """The unit rule of Figures 15 and 19; returns the unit's signature."""
    with _obs_span("check.unit", _loc_fields(
            unit.loc, typed=True, timports=len(unit.timports),
            vimports=len(unit.vimports), texports=len(unit.texports),
            vexports=len(unit.vexports), defns=len(unit.defns),
            equations=len(unit.equations))):
        return _check_typed_unit(unit, env, strict_valuable)


def _check_typed_unit(unit: TypedUnitExpr, env: TyEnv,
                      strict_valuable: bool = True) -> Sig:
    # --- distinctness ----------------------------------------------------
    tnames = (tuple(n for n, _ in unit.timports) + unit.defined_types)
    _require_distinct(tnames, "unit type names", unit.loc)
    vnames = (tuple(n for n, _ in unit.vimports) + unit.defined_values)
    _require_distinct(vnames, "unit value names", unit.loc)
    _require_distinct(tuple(n for n, _ in unit.texports),
                      "unit type exports", unit.loc)
    _require_distinct(tuple(n for n, _ in unit.vexports),
                      "unit value exports", unit.loc)

    # --- type environment with every unit type variable -------------------
    datatype_kinds = {dt.name: OMEGA for dt in unit.datatypes}
    equation_kinds = {eq.name: eq.kind for eq in unit.equations}
    tyvars = dict(unit.timports) | datatype_kinds | equation_kinds
    inner = env.with_types(tyvars)

    # --- equations: kinds, well-formedness, acyclicity --------------------
    equations: dict[str, Type] = {}
    for eq in unit.equations:
        if not kind_equal(eq.kind, OMEGA):
            raise TypeCheckError(
                f"type equation '{eq.name}': only kind * equations are "
                f"supported (the calculus anticipates constructors but "
                f"defines none)", eq.loc)
        check_type_wf(eq.rhs, inner)
        equations[eq.name] = eq.rhs
    check_equations_acyclic(equations)

    # --- exported types must be defined, at the right kind -----------------
    defined_type_kinds = datatype_kinds | equation_kinds
    for name, kind in unit.texports:
        dkind = defined_type_kinds.get(name)
        if dkind is None:
            raise TypeCheckError(
                f"unit: exported type '{name}' is not defined by a "
                f"datatype or equation", unit.loc)
        if not kind_equal(kind, dkind):
            raise TypeCheckError(
                f"unit: exported type '{name}' declared at kind {kind} "
                f"but defined at kind {dkind}", unit.loc)

    # --- well-formedness of every type annotation --------------------------
    for dt in unit.datatypes:
        check_type_wf(dt.ty1, inner)
        check_type_wf(dt.ty2, inner)
    for name, ty in unit.vimports:
        check_type_wf(ty, inner)
    for name, ty in unit.vexports:
        check_type_wf(ty, inner)
    for name, ty, _ in unit.defns:
        check_type_wf(ty, inner)

    # --- exported value types use only imported and exported types ---------
    interface_types = ({n for n, _ in unit.timports}
                       | {n for n, _ in unit.texports})
    for name, ty in unit.vexports:
        stray = (free_type_vars(expand_type(ty, equations))
                 & set(unit.defined_types)) - interface_types
        if stray:
            raise TypeCheckError(
                f"unit: the type of exported value '{name}' mentions "
                f"non-exported type(s): " + ", ".join(sorted(stray)),
                unit.loc)

    # --- value environment --------------------------------------------------
    values: dict[str, Type] = {}
    ctor_names: set[str] = set()
    for name, ty in unit.vimports:
        values[name] = expand_type(ty, equations)
    for dt in unit.datatypes:
        for op_name, op_ty in datatype_op_types(dt).items():
            values[op_name] = expand_type(op_ty, equations)
        ctor_names.update((dt.ctor1, dt.ctor2))
    for name, ty, _ in unit.defns:
        values[name] = expand_type(ty, equations)
    body_env = inner.with_values(values)

    # --- definitions: valuable, and of their declared types ----------------
    unstable = (frozenset(n for n, _ in unit.vimports)
                | frozenset(n for n, _, _ in unit.defns)) - ctor_names
    for name, ty, rhs in unit.defns:
        if strict_valuable and not _definition_valuable(rhs, unstable,
                                                        ctor_names):
            raise TypeCheckError(
                f"unit: definition of '{name}' is not valuable", unit.loc)
        actual = check_texpr(expand_texpr(rhs, equations), body_env,
                             strict_valuable)
        declared = expand_type(ty, equations)
        if not subtype(actual, declared):
            raise TypeCheckError(
                f"unit: '{name}' declared {show_type(ty)} but defined at "
                f"{show_type(actual)}", unit.loc)

    # --- exported values must be defined, at compatible types --------------
    for name, ty in unit.vexports:
        internal = values.get(name)
        if internal is None or not body_env.has_value(name):
            raise TypeCheckError(
                f"unit: exported value '{name}' is not defined", unit.loc)
        declared = expand_type(ty, equations)
        if not subtype(internal, declared):
            raise TypeCheckError(
                f"unit: export '{name}' declared {show_type(ty)} but "
                f"defined at {show_type(internal)}", unit.loc)

    # --- initialization expression (no subsumption) -------------------------
    init_ty = expand_type(
        check_texpr(expand_texpr(unit.init, equations), body_env,
                    strict_valuable),
        equations)
    local_types = set(unit.defined_types) | {n for n, _ in unit.texports}
    leaked = free_type_vars(init_ty) & local_types
    if leaked:
        raise TypeCheckError(
            "unit: the initialization expression's type mentions unit "
            "type(s) that escape their scope: " + ", ".join(sorted(leaked)),
            unit.loc)

    # --- the signature -------------------------------------------------------
    # Non-exported equations are internal abbreviations and must not
    # appear in the published signature: expand them away.  Exported
    # equations remain opaque names (revealing them is exactly what the
    # Section 5.1 translucency extension adds).
    exported_type_names = {n for n, _ in unit.texports}
    local_equations = {n: rhs for n, rhs in equations.items()
                       if n not in exported_type_names}
    depends = compute_unit_depends(unit.texports, unit.timports, equations)
    sig = Sig(
        unit.timports,
        tuple((n, expand_type(t, local_equations))
              for n, t in unit.vimports),
        unit.texports,
        tuple((n, expand_type(t, local_equations))
              for n, t in unit.vexports),
        expand_type(init_ty, local_equations),
        depends)
    check_sig_wf(sig, env)
    return sig


def _definition_valuable(expr: TExpr, unstable: frozenset[str],
                         ctors: set[str]) -> bool:
    """Valuability with constructor applications permitted."""
    if isinstance(expr, TApp) and isinstance(expr.fn, TVar) \
            and expr.fn.name in ctors:
        return all(_definition_valuable(a, unstable, ctors)
                   for a in expr.args)
    if isinstance(expr, (TBox, TUnbox, TProj)):
        return _definition_valuable(expr.expr, unstable, ctors)
    if isinstance(expr, TTuple):
        return all(_definition_valuable(e, unstable, ctors)
                   for e in expr.exprs)
    if isinstance(expr, TApp) and isinstance(expr.fn, TVar) \
            and expr.fn.name in PURE_PRIMS and expr.fn.name not in unstable:
        return all(_definition_valuable(a, unstable, ctors)
                   for a in expr.args)
    return is_tvaluable(expr, unstable)


# ---------------------------------------------------------------------------
# The invoke rule
# ---------------------------------------------------------------------------


def check_typed_invoke(invoke: TypedInvokeExpr, env: TyEnv,
                       strict_valuable: bool = True) -> Type:
    """The invoke rule of Figures 15 and 19; returns the result type."""
    with _obs_span("check.invoke", _loc_fields(
            invoke.loc, typed=True, tlinks=len(invoke.tlinks),
            vlinks=len(invoke.vlinks))):
        return _check_typed_invoke(invoke, env, strict_valuable)


def _check_typed_invoke(invoke: TypedInvokeExpr, env: TyEnv,
                        strict_valuable: bool = True) -> Type:
    sig = check_texpr(invoke.expr, env, strict_valuable)
    if not isinstance(sig, Sig):
        raise TypeCheckError(
            f"invoke: expected a unit (signature type), got "
            f"{show_type(sig)}", invoke.loc)
    _require_distinct([n for n, _ in invoke.tlinks],
                      "invoke type links", invoke.loc)
    _require_distinct([n for n, _ in invoke.vlinks],
                      "invoke value links", invoke.loc)

    # Supplied types: well-formed, with kinds matching the declaration.
    type_mapping: dict[str, Type] = {}
    for name, ty in invoke.tlinks:
        check_type_wf(ty, env)
        type_mapping[name] = ty
    for name, kind in sig.timports:
        if name not in type_mapping:
            raise TypeCheckError(
                f"invoke: imported type '{name}' is not supplied",
                invoke.loc)
        if not kind_equal(kind, OMEGA):
            raise TypeCheckError(
                f"invoke: imported type '{name}' has non-* kind {kind}",
                invoke.loc)

    # Supplied values: checked (with subsumption) against the declared
    # import types, with the supplied types substituted for the
    # imported type variables.
    supplied: dict[str, Type] = {}
    for name, rhs in invoke.vlinks:
        supplied[name] = check_texpr(rhs, env, strict_valuable)
    for name, declared in sig.vimports:
        if name not in supplied:
            raise TypeCheckError(
                f"invoke: imported value '{name}' is not supplied",
                invoke.loc)
        expected = subst_type(declared, type_mapping)
        if not subtype(supplied[name], expected):
            raise TypeCheckError(
                f"invoke: import '{name}' expects "
                f"{show_type(expected)}, got {show_type(supplied[name])}",
                invoke.loc)

    result = subst_type(sig.init, type_mapping)
    check_type_wf(result, env)
    return result


# ---------------------------------------------------------------------------
# The compound rule
# ---------------------------------------------------------------------------


def _clause_sig(clause: TypedLinkClause, init: Type) -> Sig:
    """The signature a with/provides clause ascribes to its constituent."""
    return Sig(clause.with_types, clause.with_values,
               clause.prov_types, clause.prov_values, init)


def _decl_subset(sub_t, sub_v, sources_t: dict, sources_v: dict,
                 what: str, loc) -> None:
    """Check that declarations are drawn, name and content, from sources."""
    for name, kind in sub_t:
        skind = sources_t.get(name)
        if skind is None:
            raise TypeCheckError(
                f"compound: {what} type '{name}' has no source among the "
                f"imports and the other constituent's provides", loc)
        if not kind_equal(kind, skind):
            raise TypeCheckError(
                f"compound: {what} type '{name}' declared at kind {kind} "
                f"but its source has kind {skind}", loc)
    for name, ty in sub_v:
        sty = sources_v.get(name)
        if sty is None:
            raise TypeCheckError(
                f"compound: {what} value '{name}' has no source among the "
                f"imports and the other constituent's provides", loc)
        if ty != sty:
            raise TypeCheckError(
                f"compound: {what} value '{name}' declared at "
                f"{show_type(ty)} but its source declares {show_type(sty)} "
                f"— the two occurrences have different sources in the "
                f"link graph", loc)


def check_typed_compound(compound: TypedCompoundExpr, env: TyEnv,
                         strict_valuable: bool = True) -> Sig:
    """The compound rule of Figures 15 and 19; returns the signature."""
    with _obs_span("check.compound", _loc_fields(
            compound.loc, typed=True,
            imports=len(compound.timports) + len(compound.vimports),
            exports=len(compound.texports) + len(compound.vexports))):
        return _check_typed_compound(compound, env, strict_valuable)


def _check_typed_compound(compound: TypedCompoundExpr, env: TyEnv,
                          strict_valuable: bool = True) -> Sig:
    first, second = compound.first, compound.second

    # --- distinctness across the shared namespace --------------------------
    tnames = ([n for n, _ in compound.timports]
              + [n for n, _ in first.prov_types]
              + [n for n, _ in second.prov_types])
    _require_distinct(tnames, "compound type names", compound.loc)
    vnames = ([n for n, _ in compound.vimports]
              + [n for n, _ in first.prov_values]
              + [n for n, _ in second.prov_values])
    _require_distinct(vnames, "compound value names", compound.loc)

    # --- with/provides declarations must match their sources ----------------
    imports_t = dict(compound.timports)
    imports_v = dict(compound.vimports)
    _decl_subset(first.with_types, first.with_values,
                 imports_t | dict(second.prov_types),
                 imports_v | dict(second.prov_values),
                 "first with", compound.loc)
    _decl_subset(second.with_types, second.with_values,
                 imports_t | dict(first.prov_types),
                 imports_v | dict(first.prov_values),
                 "second with", compound.loc)
    _decl_subset(compound.texports, compound.vexports,
                 dict(first.prov_types) | dict(second.prov_types),
                 dict(first.prov_values) | dict(second.prov_values),
                 "exported", compound.loc)

    # --- constituents against their ascribed signatures ---------------------
    sig1 = check_texpr(first.expr, env, strict_valuable)
    sig2 = check_texpr(second.expr, env, strict_valuable)
    for which, actual in (("first", sig1), ("second", sig2)):
        if not isinstance(actual, Sig):
            raise TypeCheckError(
                f"compound: {which} constituent is not a unit (it has "
                f"type {show_type(actual)})", compound.loc)
    assert isinstance(sig1, Sig) and isinstance(sig2, Sig)

    # The clause signatures inherit the actual initialization types and
    # (per Figure 19) the actual dependency declarations.
    ascribed1 = Sig(first.with_types, first.with_values,
                    first.prov_types, first.prov_values,
                    sig1.init, sig1.depends)
    ascribed2 = Sig(second.with_types, second.with_values,
                    second.prov_types, second.prov_values,
                    sig2.init, sig2.depends)
    # Ascribed signatures are checked well-formed in the *outer*
    # environment (Figure 15): every type a clause mentions must be
    # bound by that clause's own with/provides declarations.  This is
    # what rejects Figure 4's Bad program — a clause cannot mention a
    # type variable whose source it does not declare.
    check_sig_wf(ascribed1, env)
    check_sig_wf(ascribed2, env)
    col = _obs_current()
    for which, actual, ascribed in (("first", sig1, ascribed1),
                                    ("second", sig2, ascribed2)):
        ok = sig_subtype(actual, ascribed)
        if col is not None:
            col.emit("check.subtype", _loc_fields(
                compound.loc, which=which, ok=ok))
        if not ok:
            raise TypeCheckError(
                f"compound: the {which} constituent's signature does not "
                f"match its with/provides clause", compound.loc)

    # --- dependencies: no cycles through the links ---------------------------
    compound_link_cycle_check(sig1.depends, sig2.depends)
    depends = compute_compound_depends(
        compound.timports, compound.texports, sig1.depends, sig2.depends)

    sig = Sig(compound.timports, compound.vimports,
              compound.texports, compound.vexports, sig2.init, depends)
    check_sig_wf(sig, env)
    return sig
