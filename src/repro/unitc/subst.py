"""Renaming and substitution over typed expressions.

The typed reduction rules (Sections 4.2.2 and 4.3.2) need three
operations:

* renaming a unit's internal *value* definitions apart when compounds
  merge,
* renaming its internal *type* definitions (datatypes and equations)
  apart,
* substituting supplied value expressions for imported variables when a
  unit is invoked.

Replacement names are globally fresh (:func:`repro.lang.subst.gensym`),
so renaming can never capture; substitution stops at binders that
shadow the substituted name.

Mirroring :mod:`repro.lang.subst`, value substitution is memoized:
:func:`free_value_vars` caches each node's free *value* variables on
the (immutable) node, and :func:`subst_values_texpr` returns a subtree
unchanged when it contains no free occurrence of any mapped variable.
Both honor the global caching switch in :mod:`repro.lang.terms`.
"""

from __future__ import annotations

from repro import limits as _limits
from repro.lang import terms as _terms
from repro.types.types import TyVar, Type
from repro.unite.expand import expand_texpr, expand_type
from repro.unitc.ast import (
    DatatypeDefn,
    TApp,
    TBox,
    TExpr,
    TIf,
    TLambda,
    TLet,
    TLetrec,
    TLit,
    TProj,
    TSeq,
    TSet,
    TSetBox,
    TTuple,
    TUnbox,
    TVar,
    TypeEqn,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedLinkClause,
    TypedUnitExpr,
)


def subst_types_texpr(expr: TExpr, mapping: dict[str, Type]) -> TExpr:
    """Substitute types for type variables throughout annotations.

    Shadowing and scope handling are exactly abbreviation expansion
    with a one-step mapping (:func:`repro.unite.expand.expand_texpr`).
    """
    return expand_texpr(expr, mapping)


def rename_types_texpr(expr: TExpr, renames: dict[str, str]) -> TExpr:
    """Rename type variables (to globally fresh names) in annotations."""
    return subst_types_texpr(
        expr, {old: TyVar(new) for old, new in renames.items()})


def free_value_vars(expr: TExpr) -> frozenset[str]:
    """The free *value* variables of a typed expression (memoized).

    Type variables and annotations are ignored — this is the value
    namespace only, matching the binders :func:`subst_values_texpr`
    respects (lambda parameters, let/letrec bindings, and a typed
    unit's value imports and defined values, including the five
    operations each datatype introduces).
    """
    if _terms._enabled:
        cached = expr.__dict__.get("_fvv")
        if cached is not None:
            return cached
        out = _free_value_vars(expr)
        object.__setattr__(expr, "_fvv", out)
        return out
    return _free_value_vars(expr)


def _free_value_vars(expr: TExpr) -> frozenset[str]:
    if isinstance(expr, TLit):
        return frozenset()
    if isinstance(expr, TVar):
        return frozenset((expr.name,))
    if isinstance(expr, TLambda):
        return free_value_vars(expr.body) - {n for n, _ in expr.params}
    if isinstance(expr, TApp):
        out = free_value_vars(expr.fn)
        for arg in expr.args:
            out |= free_value_vars(arg)
        return out
    if isinstance(expr, TIf):
        return (free_value_vars(expr.test) | free_value_vars(expr.then)
                | free_value_vars(expr.orelse))
    if isinstance(expr, TLet):
        bound = {n for n, _ in expr.bindings}
        out = frozenset()
        for _, rhs in expr.bindings:
            out |= free_value_vars(rhs)
        return out | (free_value_vars(expr.body) - bound)
    if isinstance(expr, TLetrec):
        bound = {n for n, _, _ in expr.bindings}
        out = free_value_vars(expr.body)
        for _, _, rhs in expr.bindings:
            out |= free_value_vars(rhs)
        return out - bound
    if isinstance(expr, (TSeq, TTuple)):
        out = frozenset()
        for sub in expr.exprs:
            out |= free_value_vars(sub)
        return out
    if isinstance(expr, TSet):
        return frozenset((expr.name,)) | free_value_vars(expr.expr)
    if isinstance(expr, (TProj, TBox, TUnbox)):
        return free_value_vars(expr.expr)
    if isinstance(expr, TSetBox):
        return free_value_vars(expr.box) | free_value_vars(expr.expr)
    if isinstance(expr, TypedUnitExpr):
        bound = {n for n, _ in expr.vimports} | set(expr.defined_values)
        out = frozenset()
        for _, _, rhs in expr.defns:
            out |= free_value_vars(rhs)
        out |= free_value_vars(expr.init)
        return out - bound
    if isinstance(expr, TypedCompoundExpr):
        return (free_value_vars(expr.first.expr)
                | free_value_vars(expr.second.expr))
    if isinstance(expr, TypedInvokeExpr):
        out = free_value_vars(expr.expr)
        for _, rhs in expr.vlinks:
            out |= free_value_vars(rhs)
        return out
    raise TypeError(f"free_value_vars: unknown expression {expr!r}")


def subst_values_texpr(expr: TExpr, mapping: dict[str, TExpr]) -> TExpr:
    """Substitute closed typed expressions for free value variables.

    Each visited node charges the active budget's ``subst_nodes``
    allowance, mirroring :func:`repro.lang.subst.substitute`."""
    if not mapping:
        return expr
    budget = _limits.current()
    if budget is not None:
        budget.charge_subst(expr)
    if _terms._enabled and free_value_vars(expr).isdisjoint(mapping):
        return expr
    if isinstance(expr, TLit):
        return expr
    if isinstance(expr, TVar):
        return mapping.get(expr.name, expr)
    if isinstance(expr, TLambda):
        inner = {k: v for k, v in mapping.items()
                 if k not in {n for n, _ in expr.params}}
        return TLambda(expr.params, subst_values_texpr(expr.body, inner),
                       expr.loc)
    if isinstance(expr, TApp):
        return TApp(subst_values_texpr(expr.fn, mapping),
                    tuple(subst_values_texpr(a, mapping) for a in expr.args),
                    expr.loc)
    if isinstance(expr, TIf):
        return TIf(subst_values_texpr(expr.test, mapping),
                   subst_values_texpr(expr.then, mapping),
                   subst_values_texpr(expr.orelse, mapping), expr.loc)
    if isinstance(expr, TLet):
        new_bindings = tuple((n, subst_values_texpr(rhs, mapping))
                             for n, rhs in expr.bindings)
        inner = {k: v for k, v in mapping.items()
                 if k not in {n for n, _ in expr.bindings}}
        return TLet(new_bindings, subst_values_texpr(expr.body, inner),
                    expr.loc)
    if isinstance(expr, TLetrec):
        inner = {k: v for k, v in mapping.items()
                 if k not in {n for n, _, _ in expr.bindings}}
        return TLetrec(
            tuple((n, t, subst_values_texpr(rhs, inner))
                  for n, t, rhs in expr.bindings),
            subst_values_texpr(expr.body, inner), expr.loc)
    if isinstance(expr, TSeq):
        return TSeq(tuple(subst_values_texpr(e, mapping)
                          for e in expr.exprs), expr.loc)
    if isinstance(expr, TSet):
        target = mapping.get(expr.name)
        name = expr.name
        if target is not None:
            if isinstance(target, TVar):
                name = target.name
            else:
                raise ValueError(
                    f"cannot substitute a non-variable for the assigned "
                    f"variable {expr.name}")
        return TSet(name, subst_values_texpr(expr.expr, mapping), expr.loc)
    if isinstance(expr, TTuple):
        return TTuple(tuple(subst_values_texpr(e, mapping)
                            for e in expr.exprs), expr.loc)
    if isinstance(expr, TProj):
        return TProj(expr.index, subst_values_texpr(expr.expr, mapping),
                     expr.loc)
    if isinstance(expr, TBox):
        return TBox(subst_values_texpr(expr.expr, mapping), expr.loc)
    if isinstance(expr, TUnbox):
        return TUnbox(subst_values_texpr(expr.expr, mapping), expr.loc)
    if isinstance(expr, TSetBox):
        return TSetBox(subst_values_texpr(expr.box, mapping),
                       subst_values_texpr(expr.expr, mapping), expr.loc)
    if isinstance(expr, TypedUnitExpr):
        bound = ({n for n, _ in expr.vimports}
                 | set(expr.defined_values))
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            return expr
        return TypedUnitExpr(
            expr.timports, expr.vimports, expr.texports, expr.vexports,
            expr.datatypes, expr.equations,
            tuple((n, t, subst_values_texpr(rhs, inner))
                  for n, t, rhs in expr.defns),
            subst_values_texpr(expr.init, inner), expr.loc)
    if isinstance(expr, TypedCompoundExpr):
        def clause(c: TypedLinkClause) -> TypedLinkClause:
            return TypedLinkClause(
                subst_values_texpr(c.expr, mapping),
                c.with_types, c.with_values, c.prov_types, c.prov_values,
                c.loc)

        return TypedCompoundExpr(
            expr.timports, expr.vimports, expr.texports, expr.vexports,
            clause(expr.first), clause(expr.second), expr.loc)
    if isinstance(expr, TypedInvokeExpr):
        return TypedInvokeExpr(
            subst_values_texpr(expr.expr, mapping),
            expr.tlinks,
            tuple((n, subst_values_texpr(rhs, mapping))
                  for n, rhs in expr.vlinks),
            expr.loc)
    raise TypeError(f"subst_values_texpr: unknown expression {expr!r}")


def rename_values_texpr(expr: TExpr, renames: dict[str, str]) -> TExpr:
    """Rename free value variables (to globally fresh names)."""
    return subst_values_texpr(
        expr, {old: TVar(new) for old, new in renames.items()})


def rename_unit_internals(unit: TypedUnitExpr,
                          value_renames: dict[str, str],
                          type_renames: dict[str, str]) -> TypedUnitExpr:
    """Rename a unit's internal definitions (values and types) at once.

    Used by compound merging: the renamed names are definitions of the
    unit itself, so renaming applies to definition sites and to every
    reference in the unit's bodies and annotations.
    """
    vmap = {old: TVar(new) for old, new in value_renames.items()}
    tmap = {old: TyVar(new) for old, new in type_renames.items()}

    def rv(name: str) -> str:
        return value_renames.get(name, name)

    def rt(name: str) -> str:
        return type_renames.get(name, name)

    def fix_expr(e: TExpr) -> TExpr:
        # Renames target the unit's own definitions; the unit's binders
        # would normally shadow them, so rewrite the raw body parts
        # directly rather than going through the unit node.
        out = subst_values_texpr(e, vmap) if vmap else e
        out = subst_types_texpr(out, tmap) if tmap else out
        return out

    def fix_type(t: Type) -> Type:
        return expand_type(t, tmap) if tmap else t

    datatypes = tuple(
        DatatypeDefn(rt(d.name), rv(d.ctor1), rv(d.dtor1), fix_type(d.ty1),
                     rv(d.ctor2), rv(d.dtor2), fix_type(d.ty2),
                     rv(d.pred), d.loc)
        for d in unit.datatypes)
    equations = tuple(
        TypeEqn(rt(q.name), q.kind, fix_type(q.rhs), q.loc)
        for q in unit.equations)
    defns = tuple(
        (rv(name), fix_type(ty), fix_expr(rhs))
        for name, ty, rhs in unit.defns)
    return TypedUnitExpr(
        unit.timports,
        tuple((n, fix_type(t)) for n, t in unit.vimports),
        unit.texports,
        tuple((n, fix_type(t)) for n, t in unit.vexports),
        datatypes, equations, defns, fix_expr(unit.init), unit.loc)
