"""Typed reduction: compound merging and invocation with type
propagation (Sections 4.2.2 and 4.3.2).

"The only difference for UNITc is that the invoke and compound
reductions propagate type definitions as well as val definitions."  And
for UNITe: "the compound reduction propagates type abbreviations, but
the invoke reduction immediately expands all type abbreviations in the
invoked unit" — formalizing "the intuition that type equations
constrain how programs are linked, but they have no run-time effect
when programs are executed."

:func:`merge_typed_compound` performs the typed Figure 8/11 merge;
:func:`reduce_typed_invoke` produces a :class:`TypedBlock` — the
paper's core ``letrec`` over both type and value definitions — with
imports substituted and (per UNITe) every abbreviation expanded away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import UnitLinkError
from repro.lang.subst import fresh_like
from repro.types.types import Type
from repro.unitc.ast import (
    DatatypeDefn,
    TExpr,
    TSeq,
    TypeEqn,
    TypedCompoundExpr,
    TypedUnitExpr,
)
from repro.unitc.subst import (
    rename_unit_internals,
    subst_types_texpr,
    subst_values_texpr,
)
from repro.unite.expand import expand_texpr, expand_type


def _tseq(first: TExpr, second: TExpr) -> TExpr:
    firsts = first.exprs if isinstance(first, TSeq) else (first,)
    seconds = second.exprs if isinstance(second, TSeq) else (second,)
    return TSeq(firsts + seconds)


def merge_typed_compound(compound: TypedCompoundExpr,
                         first: TypedUnitExpr,
                         second: TypedUnitExpr) -> TypedUnitExpr:
    """Merge two typed unit values per the typed compound reduction.

    Both type and value definitions are propagated into the merged
    unit; hidden (non-provided) definitions are renamed apart exactly
    as in the untyped rule.
    """
    for unit, clause, which in (
            (first, compound.first, "first"),
            (second, compound.second, "second")):
        missing_v = [n for n, _ in unit.vimports
                     if n not in {m for m, _ in clause.with_values}]
        missing_t = [n for n, _ in unit.timports
                     if n not in {m for m, _ in clause.with_types}]
        if missing_v or missing_t:
            raise UnitLinkError(
                f"compound: {which} constituent imports exceed its with "
                f"clause: " + ", ".join(missing_v + missing_t))
        absent_v = [n for n, _ in clause.prov_values
                    if n not in {m for m, _ in unit.vexports}]
        absent_t = [n for n, _ in clause.prov_types
                    if n not in {m for m, _ in unit.texports}]
        if absent_v or absent_t:
            raise UnitLinkError(
                f"compound: {which} constituent does not provide: "
                + ", ".join(absent_v + absent_t))

    taken_v = ({n for n, _ in compound.vimports}
               | {n for n, _ in compound.first.prov_values}
               | {n for n, _ in compound.second.prov_values})
    taken_t = ({n for n, _ in compound.timports}
               | {n for n, _ in compound.first.prov_types}
               | {n for n, _ in compound.second.prov_types})

    def plan(unit: TypedUnitExpr, clause) -> TypedUnitExpr:
        keep_v = {n for n, _ in clause.prov_values}
        keep_t = {n for n, _ in clause.prov_types}
        vren: dict[str, str] = {}
        tren: dict[str, str] = {}
        for name in unit.defined_values:
            if name in keep_v:
                taken_v.add(name)
            elif name in taken_v:
                fresh = fresh_like(name, taken_v)
                vren[name] = fresh
                taken_v.add(fresh)
            else:
                taken_v.add(name)
        for name in unit.defined_types:
            if name in keep_t:
                taken_t.add(name)
            elif name in taken_t:
                fresh = fresh_like(name, taken_t)
                tren[name] = fresh
                taken_t.add(fresh)
            else:
                taken_t.add(name)
        if vren or tren:
            return rename_unit_internals(unit, vren, tren)
        return unit

    first = plan(first, compound.first)
    second = plan(second, compound.second)

    return TypedUnitExpr(
        timports=compound.timports,
        vimports=compound.vimports,
        texports=compound.texports,
        vexports=compound.vexports,
        datatypes=first.datatypes + second.datatypes,
        equations=first.equations + second.equations,
        defns=first.defns + second.defns,
        init=_tseq(first.init, second.init),
        loc=compound.loc)


@dataclass(frozen=True)
class TypedBlock:
    """The result of typed invocation before core evaluation.

    Represents the paper's ``letrec type-defns val-defns in e`` — the
    core block that invocation rewrites to.  ``equations`` is always
    empty: per Section 4.3.2, invoke expands abbreviations immediately.
    """

    datatypes: tuple[DatatypeDefn, ...]
    defns: tuple[tuple[str, Type, TExpr], ...]
    body: TExpr


def erase_typed_block(block: "TypedBlock"):
    """Erase a typed block to a core ``letrec`` for execution.

    Datatype definitions erase to their five operation definitions
    (exactly as in :func:`repro.unitc.erase.erase_unit`), placed before
    the value definitions so constructors are available immediately.
    """
    from repro.lang.ast import Letrec
    from repro.unitc.erase import datatype_defns, erase

    bindings = []
    for dt in block.datatypes:
        bindings.extend(datatype_defns(dt))
    for name, _, rhs in block.defns:
        bindings.append((name, erase(rhs)))
    return Letrec(tuple(bindings), erase(block.body))


def run_typed_block(block: "TypedBlock"):
    """Evaluate a typed block on the core interpreter.

    Used by tests to confirm that typed reduction agrees with direct
    invocation: ``run(reduce_typed_invoke(u, T, V)) == run(invoke/t u
    T V)``.
    """
    from repro.lang.interp import Interpreter

    return Interpreter().eval(erase_typed_block(block))


def reduce_typed_invoke(unit: TypedUnitExpr,
                        tlinks: dict[str, Type],
                        vlinks: dict[str, TExpr]) -> TypedBlock:
    """Apply the typed invoke reduction.

    Imported type variables are replaced by the supplied types,
    imported value variables by the supplied (value) expressions, and
    every type abbreviation is expanded away (Section 4.3.2).
    """
    missing_t = [n for n, _ in unit.timports if n not in tlinks]
    missing_v = [n for n, _ in unit.vimports if n not in vlinks]
    if missing_t or missing_v:
        raise UnitLinkError(
            "invoke: unit imports not satisfied: "
            + ", ".join(missing_t + missing_v))

    equations = {eq.name: eq.rhs for eq in unit.equations}
    tmap = {name: tlinks[name] for name, _ in unit.timports}
    vmap = {name: vlinks[name] for name, _ in unit.vimports}

    def fix_type(ty: Type) -> Type:
        return expand_type(expand_type(ty, equations), tmap)

    def fix_expr(expr: TExpr) -> TExpr:
        out = expand_texpr(expr, equations)
        out = subst_types_texpr(out, tmap)
        return subst_values_texpr(out, vmap)

    datatypes = tuple(
        DatatypeDefn(d.name, d.ctor1, d.dtor1, fix_type(d.ty1),
                     d.ctor2, d.dtor2, fix_type(d.ty2), d.pred, d.loc)
        for d in unit.datatypes)
    defns = tuple((name, fix_type(ty), fix_expr(rhs))
                  for name, ty, rhs in unit.defns)
    return TypedBlock(datatypes, defns, fix_expr(unit.init))
