"""Abstract syntax for the typed calculi UNITc and UNITe.

Figure 13 extends the unit language with types: interfaces declare
kinds for type variables and types for value variables, and unit
bodies contain datatype definitions (and, in UNITe per Figure 16, type
equations) alongside value definitions.

The typed expression language is a separate AST from the untyped core
(:mod:`repro.lang.ast`): lambdas and letrecs carry annotations, and
tuples/boxes are structural forms so the checker can type them without
polymorphism.  :mod:`repro.unitc.erase` maps every typed expression to
an untyped core expression for execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import SrcLoc
from repro.types.kinds import Kind
from repro.types.types import Type


@dataclass(frozen=True)
class TExpr:
    """Base class of typed expressions."""


@dataclass(frozen=True)
class TLit(TExpr):
    """A literal: int, str, bool, or void (None)."""

    value: object
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TVar(TExpr):
    """A variable reference."""

    name: str
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TLambda(TExpr):
    """An annotated procedure: ``(lambda ((x tau) ...) body)``."""

    params: tuple[tuple[str, Type], ...]
    body: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TApp(TExpr):
    """Application."""

    fn: TExpr
    args: tuple[TExpr, ...]
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TIf(TExpr):
    """Conditional; the test must have type bool."""

    test: TExpr
    then: TExpr
    orelse: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TLet(TExpr):
    """Parallel binding with inferred types: ``(let ((x e) ...) body)``."""

    bindings: tuple[tuple[str, TExpr], ...]
    body: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TLetrec(TExpr):
    """Annotated recursive block: ``(letrec ((x tau e) ...) body)``."""

    bindings: tuple[tuple[str, Type, TExpr], ...]
    body: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TSeq(TExpr):
    """Sequencing; the type is the last expression's type."""

    exprs: tuple[TExpr, ...]
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TSet(TExpr):
    """Assignment to a variable; result type void."""

    name: str
    expr: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TTuple(TExpr):
    """Tuple construction; type is the product of component types."""

    exprs: tuple[TExpr, ...]
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TProj(TExpr):
    """Tuple projection (0-based): ``(proj i e)``."""

    index: int
    expr: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TBox(TExpr):
    """Allocate a reference cell: ``(box e)``."""

    expr: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TUnbox(TExpr):
    """Read a reference cell: ``(unbox e)``."""

    expr: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TSetBox(TExpr):
    """Write a reference cell: ``(set-box! e e)``; result type void."""

    box: TExpr
    expr: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)


# ---------------------------------------------------------------------------
# Unit-level definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatatypeDefn:
    """A two-variant constructed type (Section 4.2):

    ``type t = xc1, xd1 tau1 | xcr, xdr taur |> xt``

    ``ctor1 : tau1 -> t`` constructs the first variant and ``dtor1 :
    t -> tau1`` deconstructs it (signalling a run-time error on the
    wrong variant); likewise ``ctor2``/``dtor2`` for the second; the
    predicate ``pred : t -> bool`` returns true exactly for first-variant
    instances.  ``tau1``/``tau2`` may reference ``t`` or other unit type
    variables, giving (mutually) recursive datatypes.
    """

    name: str
    ctor1: str
    dtor1: str
    ty1: Type
    ctor2: str
    dtor2: str
    ty2: Type
    pred: str
    loc: SrcLoc | None = field(default=None, compare=False)

    @property
    def value_names(self) -> tuple[str, ...]:
        """The five value variables the definition introduces."""
        return (self.ctor1, self.dtor1, self.ctor2, self.dtor2, self.pred)


@dataclass(frozen=True)
class TypeEqn:
    """A UNITe type equation ``type t :: kappa = tau`` (Figure 16)."""

    name: str
    kind: Kind
    rhs: Type
    loc: SrcLoc | None = field(default=None, compare=False)


# ---------------------------------------------------------------------------
# Typed unit forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypedUnitExpr(TExpr):
    """A typed unit (Figures 13 and 16).

    ``defns`` entries are ``(name, declared type, expression)`` —
    the ``val x : tau = e`` definitions.  ``datatypes`` and
    ``equations`` are the unit's type definitions; equations are empty
    in plain UNITc programs.
    """

    timports: tuple[tuple[str, Kind], ...]
    vimports: tuple[tuple[str, Type], ...]
    texports: tuple[tuple[str, Kind], ...]
    vexports: tuple[tuple[str, Type], ...]
    datatypes: tuple[DatatypeDefn, ...]
    equations: tuple[TypeEqn, ...]
    defns: tuple[tuple[str, Type, TExpr], ...]
    init: TExpr
    loc: SrcLoc | None = field(default=None, compare=False)

    @property
    def defined_types(self) -> tuple[str, ...]:
        """Type names introduced by datatypes and equations."""
        return tuple(d.name for d in self.datatypes) + tuple(
            e.name for e in self.equations)

    @property
    def defined_values(self) -> tuple[str, ...]:
        """Value names introduced by datatypes and val definitions."""
        names: list[str] = []
        for d in self.datatypes:
            names.extend(d.value_names)
        names.extend(name for name, _, _ in self.defns)
        return tuple(names)


@dataclass(frozen=True)
class TypedLinkClause:
    """A typed with/provides clause: declarations, not just names."""

    expr: TExpr
    with_types: tuple[tuple[str, Kind], ...]
    with_values: tuple[tuple[str, Type], ...]
    prov_types: tuple[tuple[str, Kind], ...]
    prov_values: tuple[tuple[str, Type], ...]
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TypedCompoundExpr(TExpr):
    """The typed two-constituent compound (Figures 13 and 16)."""

    timports: tuple[tuple[str, Kind], ...]
    vimports: tuple[tuple[str, Type], ...]
    texports: tuple[tuple[str, Kind], ...]
    vexports: tuple[tuple[str, Type], ...]
    first: TypedLinkClause
    second: TypedLinkClause
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TypedInvokeExpr(TExpr):
    """Typed invocation: imports satisfied by types and values.

    ``tlinks`` supply actual types for imported type variables;
    ``vlinks`` supply values for imported value variables
    (Section 3.4's dynamic linking uses exactly this form).
    """

    expr: TExpr
    tlinks: tuple[tuple[str, Type], ...]
    vlinks: tuple[tuple[str, TExpr], ...]
    loc: SrcLoc | None = field(default=None, compare=False)
