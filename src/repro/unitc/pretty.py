"""Pretty-printer for the typed expression language.

``texpr_to_datum`` is a right inverse of the typed parser: printing a
typed AST and re-parsing yields an equal AST (checked by property
tests).  Used to serialize typed units into the archive and to render
typed reduction results.
"""

from __future__ import annotations

from repro.lang.sexpr import Datum, SList, Symbol, format_sexpr, write_sexpr
from repro.types.pretty import kind_to_datum, type_to_datum
from repro.unitc.ast import (
    DatatypeDefn,
    TApp,
    TBox,
    TExpr,
    TIf,
    TLambda,
    TLet,
    TLetrec,
    TLit,
    TProj,
    TSeq,
    TSet,
    TSetBox,
    TTuple,
    TUnbox,
    TVar,
    TypeEqn,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedLinkClause,
    TypedUnitExpr,
)


def _s(*items: Datum) -> SList:
    return SList(tuple(items))


def _y(name: str) -> Symbol:
    return Symbol(name)


def texpr_to_datum(expr: TExpr) -> Datum:
    """Convert a typed expression to its surface syntax."""
    if isinstance(expr, TLit):
        if expr.value is None:
            return _s(_y("void"))
        return expr.value  # type: ignore[return-value]
    if isinstance(expr, TVar):
        return _y(expr.name)
    if isinstance(expr, TLambda):
        params = _s(*(_s(_y(name), type_to_datum(ty))
                      for name, ty in expr.params))
        return _s(_y("lambda"), params, texpr_to_datum(expr.body))
    if isinstance(expr, TApp):
        return _s(texpr_to_datum(expr.fn),
                  *(texpr_to_datum(a) for a in expr.args))
    if isinstance(expr, TIf):
        return _s(_y("if"), texpr_to_datum(expr.test),
                  texpr_to_datum(expr.then), texpr_to_datum(expr.orelse))
    if isinstance(expr, TLet):
        bindings = _s(*(_s(_y(name), texpr_to_datum(rhs))
                        for name, rhs in expr.bindings))
        return _s(_y("let"), bindings, texpr_to_datum(expr.body))
    if isinstance(expr, TLetrec):
        bindings = _s(*(_s(_y(name), type_to_datum(ty), texpr_to_datum(rhs))
                        for name, ty, rhs in expr.bindings))
        return _s(_y("letrec"), bindings, texpr_to_datum(expr.body))
    if isinstance(expr, TSeq):
        return _s(_y("begin"), *(texpr_to_datum(e) for e in expr.exprs))
    if isinstance(expr, TSet):
        return _s(_y("set!"), _y(expr.name), texpr_to_datum(expr.expr))
    if isinstance(expr, TTuple):
        return _s(_y("tuple"), *(texpr_to_datum(e) for e in expr.exprs))
    if isinstance(expr, TProj):
        return _s(_y("proj"), expr.index, texpr_to_datum(expr.expr))
    if isinstance(expr, TBox):
        return _s(_y("box"), texpr_to_datum(expr.expr))
    if isinstance(expr, TUnbox):
        return _s(_y("unbox"), texpr_to_datum(expr.expr))
    if isinstance(expr, TSetBox):
        return _s(_y("set-box!"), texpr_to_datum(expr.box),
                  texpr_to_datum(expr.expr))
    if isinstance(expr, TypedUnitExpr):
        return typed_unit_to_datum(expr)
    if isinstance(expr, TypedCompoundExpr):
        return typed_compound_to_datum(expr)
    if isinstance(expr, TypedInvokeExpr):
        return typed_invoke_to_datum(expr)
    raise TypeError(f"texpr_to_datum: unknown expression {expr!r}")


def _decls_datum(keyword: str, tdecls, vdecls) -> SList:
    items: list[Datum] = [_y(keyword)]
    for name, kind in tdecls:
        items.append(_s(_y("type"), _y(name), kind_to_datum(kind)))
    for name, ty in vdecls:
        items.append(_s(_y("val"), _y(name), type_to_datum(ty)))
    return SList(tuple(items))


def _datatype_datum(dt: DatatypeDefn) -> SList:
    return _s(_y("datatype"), _y(dt.name),
              _s(_y(dt.ctor1), _y(dt.dtor1), type_to_datum(dt.ty1)),
              _s(_y(dt.ctor2), _y(dt.dtor2), type_to_datum(dt.ty2)),
              _y(dt.pred))


def _equation_datum(eq: TypeEqn) -> SList:
    return _s(_y("type"), _y(eq.name), kind_to_datum(eq.kind),
              type_to_datum(eq.rhs))


def typed_unit_to_datum(unit: TypedUnitExpr) -> SList:
    """Convert a typed unit to its surface syntax."""
    items: list[Datum] = [
        _y("unit/t"),
        _decls_datum("import", unit.timports, unit.vimports),
        _decls_datum("export", unit.texports, unit.vexports),
    ]
    for dt in unit.datatypes:
        items.append(_datatype_datum(dt))
    for eq in unit.equations:
        items.append(_equation_datum(eq))
    for name, ty, rhs in unit.defns:
        items.append(_s(_y("define"), _y(name), type_to_datum(ty),
                        texpr_to_datum(rhs)))
    items.append(texpr_to_datum(unit.init))
    return SList(tuple(items))


def _clause_datum(clause: TypedLinkClause) -> SList:
    return _s(texpr_to_datum(clause.expr),
              _decls_datum("with", clause.with_types, clause.with_values),
              _decls_datum("provides", clause.prov_types,
                           clause.prov_values))


def typed_compound_to_datum(compound: TypedCompoundExpr) -> SList:
    """Convert a typed compound to its surface syntax."""
    return _s(_y("compound/t"),
              _decls_datum("import", compound.timports, compound.vimports),
              _decls_datum("export", compound.texports, compound.vexports),
              _s(_y("link"), _clause_datum(compound.first),
                 _clause_datum(compound.second)))


def typed_invoke_to_datum(invoke: TypedInvokeExpr) -> SList:
    """Convert a typed invoke to its surface syntax."""
    items: list[Datum] = [_y("invoke/t"), texpr_to_datum(invoke.expr)]
    for name, ty in invoke.tlinks:
        items.append(_s(_y("type"), _y(name), type_to_datum(ty)))
    for name, rhs in invoke.vlinks:
        items.append(_s(_y("val"), _y(name), texpr_to_datum(rhs)))
    return SList(tuple(items))


def show_texpr(expr: TExpr) -> str:
    """Render a typed expression on one line."""
    return write_sexpr(texpr_to_datum(expr))


def pretty_texpr(expr: TExpr, width: int = 78) -> str:
    """Render a typed expression as multi-line source text."""
    return format_sexpr(texpr_to_datum(expr), width)
