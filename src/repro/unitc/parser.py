"""Parser for the typed surface syntax (UNITc and UNITe).

.. code-block:: text

   texpr ::= literal | x
           | (lambda ((x type) ...) texpr ...)
           | (if texpr texpr texpr) | (begin texpr ...)
           | (let ((x texpr) ...) texpr ...)
           | (letrec ((x type texpr) ...) texpr ...)
           | (set! x texpr)
           | (and texpr ...) | (or ...) | (when ...) | (cond ...)
           | (tuple texpr ...) | (proj i texpr)
           | (box texpr) | (unbox texpr) | (set-box! texpr texpr)
           | (unit/t (import decl ...) (export decl ...)
               body-defn ... init-texpr ...)
           | (compound/t (import decl ...) (export decl ...)
               (link (texpr (with decl ...) (provides decl ...))
                     (texpr (with decl ...) (provides decl ...))))
           | (invoke/t texpr (type t type) ... (val x texpr) ...)
           | (texpr texpr ...)

   body-defn ::= (datatype t (xc1 xd1 type) (xc2 xd2 type) xt)
               | (type t [kind] type)      ; UNITe equation
               | (define x type texpr)
"""

from __future__ import annotations

from repro.lang.errors import ParseError, SrcLoc
from repro.lang.sexpr import Datum, SList, Symbol, read_sexpr
from repro.types.kinds import Kind, OMEGA
from repro.types.parser import parse_decls, parse_kind, parse_type
from repro.types.types import Type
from repro.unitc.ast import (
    DatatypeDefn,
    TApp,
    TBox,
    TExpr,
    TIf,
    TLambda,
    TLet,
    TLetrec,
    TLit,
    TProj,
    TSeq,
    TSet,
    TSetBox,
    TTuple,
    TUnbox,
    TVar,
    TypeEqn,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedLinkClause,
    TypedUnitExpr,
)

KEYWORDS = frozenset({
    "lambda", "if", "let", "letrec", "set!", "begin",
    "and", "or", "when", "cond", "else",
    "tuple", "proj", "box", "unbox", "set-box!",
    "unit/t", "compound/t", "invoke/t",
    "datatype", "type", "val", "define",
    "import", "export", "link", "with", "provides", "depends",
})

TVOID = TLit(None)


def _tseq(*exprs: TExpr) -> TExpr:
    if len(exprs) == 1:
        return exprs[0]
    return TSeq(tuple(exprs))


def parse_texpr(datum: Datum) -> TExpr:
    """Parse one datum into a typed expression."""
    if isinstance(datum, bool) or isinstance(datum, (int, float, str)):
        return TLit(datum)
    if isinstance(datum, Symbol):
        if datum.name in KEYWORDS:
            raise ParseError(f"keyword used as variable: {datum.name}",
                             datum.loc)
        return TVar(datum.name, datum.loc)
    if isinstance(datum, SList):
        return _parse_form(datum)
    raise ParseError(f"cannot parse typed expression: {datum!r}")


def parse_typed_program(text: str, origin: str = "<string>") -> TExpr:
    """Parse typed source text into one typed expression."""
    return parse_texpr(read_sexpr(text, origin))


def _head(datum: SList) -> str | None:
    if len(datum) > 0 and isinstance(datum[0], Symbol):
        return datum[0].name
    return None


def _sym(datum: Datum, what: str, loc: SrcLoc | None) -> str:
    if not isinstance(datum, Symbol):
        raise ParseError(f"expected {what}", loc)
    if datum.name in KEYWORDS:
        raise ParseError(f"keyword used as {what}: {datum.name}", datum.loc)
    return datum.name


def _parse_form(datum: SList) -> TExpr:
    head = _head(datum)
    if head == "lambda":
        return _parse_lambda(datum)
    if head == "if":
        if len(datum) != 4:
            raise ParseError("if: expected (if test then else)", datum.loc)
        return TIf(parse_texpr(datum[1]), parse_texpr(datum[2]),
                   parse_texpr(datum[3]), datum.loc)
    if head == "begin":
        if len(datum) < 2:
            raise ParseError("begin: expected expressions", datum.loc)
        return _tseq(*(parse_texpr(d) for d in datum[1:]))
    if head == "let":
        return _parse_let(datum)
    if head == "letrec":
        return _parse_letrec(datum)
    if head == "set!":
        if len(datum) != 3:
            raise ParseError("set!: expected (set! x e)", datum.loc)
        return TSet(_sym(datum[1], "variable", datum.loc),
                    parse_texpr(datum[2]), datum.loc)
    if head == "and":
        return _parse_and_or(datum, empty=TLit(True), is_and=True)
    if head == "or":
        return _parse_and_or(datum, empty=TLit(False), is_and=False)
    if head == "when":
        if len(datum) < 3:
            raise ParseError("when: expected test and body", datum.loc)
        return TIf(parse_texpr(datum[1]),
                   _tseq(*(parse_texpr(d) for d in datum[2:])),
                   TApp(TVar("void"), ()), datum.loc)
    if head == "cond":
        return _parse_cond(datum)
    if head == "tuple":
        if len(datum) < 3:
            raise ParseError("tuple: expected at least two components",
                             datum.loc)
        return TTuple(tuple(parse_texpr(d) for d in datum[1:]), datum.loc)
    if head == "proj":
        if len(datum) != 3 or not isinstance(datum[1], int):
            raise ParseError("proj: expected (proj index e)", datum.loc)
        return TProj(datum[1], parse_texpr(datum[2]), datum.loc)
    if head == "box":
        if len(datum) != 2:
            raise ParseError("box: expected one expression", datum.loc)
        return TBox(parse_texpr(datum[1]), datum.loc)
    if head == "unbox":
        if len(datum) != 2:
            raise ParseError("unbox: expected one expression", datum.loc)
        return TUnbox(parse_texpr(datum[1]), datum.loc)
    if head == "set-box!":
        if len(datum) != 3:
            raise ParseError("set-box!: expected box and value", datum.loc)
        return TSetBox(parse_texpr(datum[1]), parse_texpr(datum[2]),
                       datum.loc)
    if head == "unit/t":
        return parse_typed_unit(datum)
    if head == "compound/t":
        return parse_typed_compound(datum)
    if head == "invoke/t":
        return parse_typed_invoke(datum)
    if head in KEYWORDS:
        raise ParseError(f"misplaced keyword: {head}", datum.loc)
    if len(datum) == 0:
        raise ParseError("empty application", datum.loc)
    return TApp(parse_texpr(datum[0]),
                tuple(parse_texpr(d) for d in datum[1:]), datum.loc)


def _parse_lambda(datum: SList) -> TLambda:
    if len(datum) < 3 or not isinstance(datum[1], SList):
        raise ParseError("lambda: expected (lambda ((x type) ...) body ...)",
                         datum.loc)
    params: list[tuple[str, Type]] = []
    for param in datum[1]:
        if not isinstance(param, SList) or len(param) != 2:
            raise ParseError("lambda: parameter must be (x type)", datum.loc)
        params.append((_sym(param[0], "parameter", datum.loc),
                       parse_type(param[1])))
    names = [n for n, _ in params]
    if len(set(names)) != len(names):
        raise ParseError("lambda: duplicate parameter", datum.loc)
    return TLambda(tuple(params),
                   _tseq(*(parse_texpr(d) for d in datum[2:])), datum.loc)


def _parse_let(datum: SList) -> TLet:
    if len(datum) < 3 or not isinstance(datum[1], SList):
        raise ParseError("let: expected bindings and body", datum.loc)
    bindings: list[tuple[str, TExpr]] = []
    for binding in datum[1]:
        if not isinstance(binding, SList) or len(binding) != 2:
            raise ParseError("let: binding must be (x e)", datum.loc)
        bindings.append((_sym(binding[0], "binding name", datum.loc),
                         parse_texpr(binding[1])))
    names = [n for n, _ in bindings]
    if len(set(names)) != len(names):
        raise ParseError("let: duplicate binding", datum.loc)
    return TLet(tuple(bindings),
                _tseq(*(parse_texpr(d) for d in datum[2:])), datum.loc)


def _parse_letrec(datum: SList) -> TLetrec:
    if len(datum) < 3 or not isinstance(datum[1], SList):
        raise ParseError("letrec: expected bindings and body", datum.loc)
    bindings: list[tuple[str, Type, TExpr]] = []
    for binding in datum[1]:
        if not isinstance(binding, SList) or len(binding) != 3:
            raise ParseError("letrec: binding must be (x type e)", datum.loc)
        bindings.append((_sym(binding[0], "binding name", datum.loc),
                         parse_type(binding[1]), parse_texpr(binding[2])))
    names = [n for n, _, _ in bindings]
    if len(set(names)) != len(names):
        raise ParseError("letrec: duplicate binding", datum.loc)
    return TLetrec(tuple(bindings),
                   _tseq(*(parse_texpr(d) for d in datum[2:])), datum.loc)


def _parse_and_or(datum: SList, empty: TExpr, is_and: bool) -> TExpr:
    exprs = [parse_texpr(d) for d in datum[1:]]
    if not exprs:
        return empty
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        if is_and:
            result = TIf(expr, result, TLit(False), datum.loc)
        else:
            result = TIf(expr, TLit(True), result, datum.loc)
    return result


def _parse_cond(datum: SList) -> TExpr:
    clauses = datum[1:]
    if not clauses:
        raise ParseError("cond: expected clauses", datum.loc)
    result: TExpr = TApp(TVar("void"), ())
    for clause in reversed(clauses):
        if not isinstance(clause, SList) or len(clause) < 2:
            raise ParseError("cond: malformed clause", datum.loc)
        body = _tseq(*(parse_texpr(d) for d in clause[1:]))
        if isinstance(clause[0], Symbol) and clause[0].name == "else":
            result = body
        else:
            result = TIf(parse_texpr(clause[0]), body, result, datum.loc)
    return result


# ---------------------------------------------------------------------------
# Typed unit forms
# ---------------------------------------------------------------------------


def parse_typed_unit(datum: SList) -> TypedUnitExpr:
    """Parse a ``unit/t`` form."""
    if len(datum) < 3:
        raise ParseError("unit/t: expected import and export clauses",
                         datum.loc)
    timports, vimports = parse_decls(datum[1], "import")
    texports, vexports = parse_decls(datum[2], "export")
    datatypes: list[DatatypeDefn] = []
    equations: list[TypeEqn] = []
    defns: list[tuple[str, Type, TExpr]] = []
    inits: list[TExpr] = []
    for body in datum[3:]:
        head = _head(body) if isinstance(body, SList) else None
        if head in ("datatype", "type", "define") and inits:
            raise ParseError(
                "unit/t: definitions must precede initialization "
                "expressions", datum.loc)
        if head == "datatype":
            datatypes.append(_parse_datatype(body))
        elif head == "type":
            equations.append(_parse_equation(body))
        elif head == "define":
            defns.append(_parse_defn(body))
        else:
            inits.append(parse_texpr(body))
    init = _tseq(*inits) if inits else TVOID
    return TypedUnitExpr(timports, vimports, texports, vexports,
                         tuple(datatypes), tuple(equations), tuple(defns),
                         init, datum.loc)


def _parse_datatype(datum: SList) -> DatatypeDefn:
    if len(datum) != 5:
        raise ParseError(
            "datatype: expected (datatype t (c1 d1 type) (c2 d2 type) pred)",
            datum.loc)
    name = _sym(datum[1], "datatype name", datum.loc)
    variants: list[tuple[str, str, Type]] = []
    for variant in (datum[2], datum[3]):
        if not isinstance(variant, SList) or len(variant) != 3:
            raise ParseError("datatype: variant must be (ctor dtor type)",
                             datum.loc)
        variants.append((_sym(variant[0], "constructor", datum.loc),
                         _sym(variant[1], "deconstructor", datum.loc),
                         parse_type(variant[2])))
    pred = _sym(datum[4], "predicate", datum.loc)
    (c1, d1, t1), (c2, d2, t2) = variants
    return DatatypeDefn(name, c1, d1, t1, c2, d2, t2, pred, datum.loc)


def _parse_equation(datum: SList) -> TypeEqn:
    if len(datum) == 3:
        kind: Kind = OMEGA
        rhs = parse_type(datum[2])
    elif len(datum) == 4:
        kind = parse_kind(datum[2])
        rhs = parse_type(datum[3])
    else:
        raise ParseError("type: expected (type t [kind] type)", datum.loc)
    return TypeEqn(_sym(datum[1], "type name", datum.loc), kind, rhs,
                   datum.loc)


def _parse_defn(datum: SList) -> tuple[str, Type, TExpr]:
    if len(datum) != 4:
        raise ParseError("define: expected (define x type e)", datum.loc)
    return (_sym(datum[1], "defined name", datum.loc),
            parse_type(datum[2]), parse_texpr(datum[3]))


def parse_typed_compound(datum: SList) -> TypedCompoundExpr:
    """Parse a ``compound/t`` form."""
    if len(datum) != 4:
        raise ParseError(
            "compound/t: expected (compound/t (import ...) (export ...) "
            "(link clause clause))", datum.loc)
    timports, vimports = parse_decls(datum[1], "import")
    texports, vexports = parse_decls(datum[2], "export")
    link = datum[3]
    if not isinstance(link, SList) or _head(link) != "link" or len(link) != 3:
        raise ParseError("compound/t: expected (link clause clause)",
                         datum.loc)
    first = _parse_typed_clause(link[1], datum.loc)
    second = _parse_typed_clause(link[2], datum.loc)
    return TypedCompoundExpr(timports, vimports, texports, vexports,
                             first, second, datum.loc)


def _parse_typed_clause(datum: Datum, loc: SrcLoc | None) -> TypedLinkClause:
    if not isinstance(datum, SList) or len(datum) != 3:
        raise ParseError(
            "link clause: expected (e (with decl ...) (provides decl ...))",
            loc)
    expr = parse_texpr(datum[0])
    with_t, with_v = parse_decls(datum[1], "with")
    prov_t, prov_v = parse_decls(datum[2], "provides")
    return TypedLinkClause(expr, with_t, with_v, prov_t, prov_v, loc)


def parse_typed_invoke(datum: SList) -> TypedInvokeExpr:
    """Parse an ``invoke/t`` form."""
    if len(datum) < 2:
        raise ParseError("invoke/t: expected a unit expression", datum.loc)
    expr = parse_texpr(datum[1])
    tlinks: list[tuple[str, Type]] = []
    vlinks: list[tuple[str, TExpr]] = []
    for link in datum[2:]:
        if not isinstance(link, SList) or len(link) != 3 \
                or not isinstance(link[0], Symbol):
            raise ParseError(
                "invoke/t: links must be (type t type) or (val x e)",
                datum.loc)
        if link[0].name == "type":
            tlinks.append((_sym(link[1], "type name", datum.loc),
                           parse_type(link[2])))
        elif link[0].name == "val":
            vlinks.append((_sym(link[1], "import name", datum.loc),
                           parse_texpr(link[2])))
        else:
            raise ParseError(
                "invoke/t: links must be (type ...) or (val ...)", datum.loc)
    tnames = [n for n, _ in tlinks]
    vnames = [n for n, _ in vlinks]
    if len(set(tnames)) != len(tnames) or len(set(vnames)) != len(vnames):
        raise ParseError("invoke/t: duplicate link", datum.loc)
    return TypedInvokeExpr(expr, tuple(tlinks), tuple(vlinks), datum.loc)
