"""End-to-end execution of typed unit programs.

The pipeline is: parse → type-check (Figures 15/19) → erase → evaluate
on the untyped core interpreter.  Type soundness (Section 4.2.3) shows
up operationally: a program that passes :func:`check_typed_program`
never raises the unsatisfied-import link error at run time, which the
test suite verifies as a smoke-level soundness property.
"""

from __future__ import annotations

from repro.lang.interp import Interpreter
from repro.lang.prims import OutputPort
from repro.types.types import Type
from repro.unitc.ast import TExpr
from repro.unitc.check import base_tyenv, check_typed_program
from repro.unitc.erase import erase
from repro.unitc.parser import parse_typed_program


def run_typed(text: str, origin: str = "<string>",
              strict_valuable: bool = True) -> tuple[object, Type, str]:
    """Parse, check, erase, and run typed source text.

    Returns ``(result value, program type, captured output)``.
    """
    expr = parse_typed_program(text, origin)
    return run_typed_expr(expr, strict_valuable)


def run_typed_expr(expr: TExpr,
                   strict_valuable: bool = True) -> tuple[object, Type, str]:
    """Check, erase, and run an already-parsed typed expression."""
    program_type = check_typed_program(expr, base_tyenv(), strict_valuable)
    erased = erase(expr)
    port = OutputPort()
    interp = Interpreter(port=port)
    result = interp.eval(erased)
    return result, program_type, port.getvalue()


def typecheck(text: str, origin: str = "<string>",
              strict_valuable: bool = True) -> Type:
    """Parse and type-check typed source text; return the type."""
    return check_typed_program(
        parse_typed_program(text, origin), base_tyenv(), strict_valuable)
