"""UNITc: units with constructed types (Section 4.2), and the syntax
shared with UNITe (Section 4.3).

* :mod:`repro.unitc.ast` — the typed expression language,
* :mod:`repro.unitc.parser` — typed surface syntax,
* :mod:`repro.unitc.prims` — monomorphic types for the primitives,
* :mod:`repro.unitc.check` — Figure 15 type checking,
* :mod:`repro.unitc.erase` — type erasure into the untyped core,
* :mod:`repro.unitc.reduce` — typed reduction (propagating type
  definitions, Section 4.2.2),
* :mod:`repro.unitc.datatypes` — semantics of two-variant datatypes.
"""

from repro.unitc.ast import (
    DatatypeDefn,
    TypeEqn,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedUnitExpr,
)

__all__ = [
    "DatatypeDefn",
    "TypeEqn",
    "TypedCompoundExpr",
    "TypedInvokeExpr",
    "TypedUnitExpr",
]
