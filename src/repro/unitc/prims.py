"""Monomorphic primitive types for the typed core language.

The paper's typed core is monomorphic ("the monomorphic subset of ML",
Section 4.2.3), so every primitive gets one type.  A few primitives
exist in typed variants (``display-int`` alongside ``display``) whose
erasure maps back to the single untyped primitive.
"""

from __future__ import annotations

from repro.types.types import Arrow, BOOL, INT, STR, Type, VOID


def _fn(*types: Type) -> Arrow:
    return Arrow(tuple(types[:-1]), types[-1])


#: Types of the primitives available inside typed units.
TYPED_PRIMS: dict[str, Type] = {
    "+": _fn(INT, INT, INT),
    "-": _fn(INT, INT, INT),
    "*": _fn(INT, INT, INT),
    "modulo": _fn(INT, INT, INT),
    "quotient": _fn(INT, INT, INT),
    "add1": _fn(INT, INT),
    "sub1": _fn(INT, INT),
    "abs": _fn(INT, INT),
    "max": _fn(INT, INT, INT),
    "min": _fn(INT, INT, INT),
    "=": _fn(INT, INT, BOOL),
    "<": _fn(INT, INT, BOOL),
    ">": _fn(INT, INT, BOOL),
    "<=": _fn(INT, INT, BOOL),
    ">=": _fn(INT, INT, BOOL),
    "zero?": _fn(INT, BOOL),
    "not": _fn(BOOL, BOOL),
    "string-append": _fn(STR, STR, STR),
    # Arity-specific variants of the variadic untyped primitive (the
    # typed core is monomorphic, so each arity needs its own name).
    "string-append3": _fn(STR, STR, STR, STR),
    "string-append4": _fn(STR, STR, STR, STR, STR),
    "string-append5": _fn(STR, STR, STR, STR, STR, STR),
    "string-length": _fn(STR, INT),
    "string=?": _fn(STR, STR, BOOL),
    "substring": _fn(STR, INT, INT, STR),
    "number->string": _fn(INT, STR),
    "display": _fn(STR, VOID),
    "display-int": _fn(INT, VOID),
    "newline": _fn(VOID),
    "error": _fn(STR, VOID),
    "void": _fn(VOID),
}

#: Typed primitive names whose untyped runtime primitive differs.
PRIM_ERASURE: dict[str, str] = {
    "display-int": "display",
    "string-append3": "string-append",
    "string-append4": "string-append",
    "string-append5": "string-append",
}
