"""Type erasure: typed expressions to untyped core expressions.

Section 4.2.2 observes that UNITc's reduction rules "are nearly the
same as the rules for UNITd", with type definitions merely propagated;
and Section 4.3.2 that type equations "have no run-time effect when
programs are executed."  Erasure makes this precise: a checked typed
program erases to an untyped program whose evaluation (by the
interpreter or the rewriting machine) gives the typed program's
meaning.

* annotations are dropped,
* datatype definitions become the five value definitions the variants
  induce (constructors, deconstructors, predicate) over the runtime
  variant representation,
* type equations vanish,
* typed unit interfaces keep only their value imports/exports,
* tuples erase to lists, projection to ``list-ref``.
"""

from __future__ import annotations

from repro.lang import ast as core
from repro.lang.ast import Expr
from repro.units.ast import CompoundExpr, InvokeExpr, LinkClause, UnitExpr
from repro.unitc.ast import (
    DatatypeDefn,
    TApp,
    TBox,
    TExpr,
    TIf,
    TLambda,
    TLet,
    TLetrec,
    TLit,
    TProj,
    TSeq,
    TSet,
    TSetBox,
    TTuple,
    TUnbox,
    TVar,
    TypedCompoundExpr,
    TypedInvokeExpr,
    TypedUnitExpr,
)
from repro.unitc.prims import PRIM_ERASURE


def erase(expr: TExpr) -> Expr:
    """Erase a typed expression to an untyped core expression."""
    if isinstance(expr, TLit):
        return core.Lit(expr.value, expr.loc)
    if isinstance(expr, TVar):
        return core.Var(PRIM_ERASURE.get(expr.name, expr.name), expr.loc)
    if isinstance(expr, TLambda):
        return core.Lambda(tuple(name for name, _ in expr.params),
                           erase(expr.body), expr.loc)
    if isinstance(expr, TApp):
        return core.App(erase(expr.fn), tuple(erase(a) for a in expr.args),
                        expr.loc)
    if isinstance(expr, TIf):
        return core.If(erase(expr.test), erase(expr.then),
                       erase(expr.orelse), expr.loc)
    if isinstance(expr, TLet):
        return core.Let(tuple((n, erase(rhs)) for n, rhs in expr.bindings),
                        erase(expr.body), expr.loc)
    if isinstance(expr, TLetrec):
        return core.Letrec(
            tuple((n, erase(rhs)) for n, _, rhs in expr.bindings),
            erase(expr.body), expr.loc)
    if isinstance(expr, TSeq):
        return core.Seq(tuple(erase(e) for e in expr.exprs), expr.loc)
    if isinstance(expr, TSet):
        return core.SetBang(expr.name, erase(expr.expr), expr.loc)
    if isinstance(expr, TTuple):
        return core.App(core.Var("list"),
                        tuple(erase(e) for e in expr.exprs), expr.loc)
    if isinstance(expr, TProj):
        return core.App(core.Var("list-ref"),
                        (erase(expr.expr), core.Lit(expr.index)), expr.loc)
    if isinstance(expr, TBox):
        return core.App(core.Var("box"), (erase(expr.expr),), expr.loc)
    if isinstance(expr, TUnbox):
        return core.App(core.Var("unbox"), (erase(expr.expr),), expr.loc)
    if isinstance(expr, TSetBox):
        return core.App(core.Var("set-box!"),
                        (erase(expr.box), erase(expr.expr)), expr.loc)
    if isinstance(expr, TypedUnitExpr):
        return erase_unit(expr)
    if isinstance(expr, TypedCompoundExpr):
        return erase_compound(expr)
    if isinstance(expr, TypedInvokeExpr):
        return erase_invoke(expr)
    raise TypeError(f"erase: unknown typed expression {expr!r}")


def datatype_defns(dt: DatatypeDefn) -> list[tuple[str, Expr]]:
    """The value definitions a datatype erases to.

    Instances are :class:`~repro.lang.values.VariantValue` objects
    tagged with the datatype's name; the deconstructors and predicate
    check the tag and variant index at run time, raising the
    :class:`~repro.lang.errors.VariantError` that Section 4.2 specifies
    for applying a deconstructor to the wrong variant.
    """
    tag = core.Lit(dt.name)

    def ctor(index: int) -> Expr:
        return core.Lambda(
            ("v",),
            core.App(core.Var("make-variant"),
                     (tag, core.Lit(index), core.Var("v"))))

    def dtor(index: int) -> Expr:
        return core.Lambda(
            ("v",),
            core.App(core.Var("variant-payload"),
                     (tag, core.Lit(index), core.Var("v"))))

    pred = core.Lambda(
        ("v",),
        core.App(core.Var("variant-first?"), (tag, core.Var("v"))))
    return [
        (dt.ctor1, ctor(0)),
        (dt.dtor1, dtor(0)),
        (dt.ctor2, ctor(1)),
        (dt.dtor2, dtor(1)),
        (dt.pred, pred),
    ]


def erase_unit(unit: TypedUnitExpr) -> UnitExpr:
    """Erase a typed unit: type interface dropped, datatypes expanded."""
    defns: list[tuple[str, Expr]] = []
    for dt in unit.datatypes:
        defns.extend(datatype_defns(dt))
    for name, _, rhs in unit.defns:
        defns.append((name, erase(rhs)))
    return UnitExpr(
        imports=tuple(name for name, _ in unit.vimports),
        exports=tuple(name for name, _ in unit.vexports),
        defns=tuple(defns),
        init=erase(unit.init),
        loc=unit.loc)


def erase_compound(compound: TypedCompoundExpr) -> CompoundExpr:
    """Erase a typed compound: value linking only."""

    def clause(c) -> LinkClause:
        return LinkClause(
            erase(c.expr),
            tuple(name for name, _ in c.with_values),
            tuple(name for name, _ in c.prov_values),
            c.loc)

    return CompoundExpr(
        imports=tuple(name for name, _ in compound.vimports),
        exports=tuple(name for name, _ in compound.vexports),
        first=clause(compound.first),
        second=clause(compound.second),
        loc=compound.loc)


def erase_invoke(invoke: TypedInvokeExpr) -> InvokeExpr:
    """Erase a typed invoke: type links vanish, value links remain."""
    return InvokeExpr(
        erase(invoke.expr),
        tuple((name, erase(rhs)) for name, rhs in invoke.vlinks),
        invoke.loc)
