"""Python-side helpers for two-variant constructed types.

The runtime representation is
:class:`repro.lang.values.VariantValue`; this module gives tests,
examples, and embedding code a convenient way to build and inspect
instances without going through the interpreter.
"""

from __future__ import annotations

from repro.lang.errors import VariantError
from repro.lang.values import VariantValue


def construct(type_name: str, variant: int, payload: object) -> VariantValue:
    """Build an instance of ``type_name``'s first (0) or second (1)
    variant."""
    if variant not in (0, 1):
        raise VariantError(
            f"constructor for '{type_name}': variant must be 0 or 1")
    return VariantValue(type_name, variant, payload)


def deconstruct(type_name: str, variant: int, value: object) -> object:
    """Extract the payload, enforcing the tag and variant.

    Applying a deconstructor to the wrong variant "signals a run-time
    error" (Section 4.2); that error is :class:`VariantError`.
    """
    if not isinstance(value, VariantValue) or value.type_name != type_name:
        raise VariantError(
            f"deconstructor for '{type_name}': not an instance of the type")
    if value.variant != variant:
        raise VariantError(
            f"deconstructor for '{type_name}': applied to the wrong variant")
    return value.payload


def is_first(type_name: str, value: object) -> bool:
    """The predicate: true exactly for first-variant instances."""
    if not isinstance(value, VariantValue) or value.type_name != type_name:
        raise VariantError(
            f"predicate for '{type_name}': not an instance of the type")
    return value.variant == 0
