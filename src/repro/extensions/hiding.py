"""Hiding type information (Section 5.2, Figure 21).

"Large projects often have multiple levels of clients. ... information
about ``RecEnv``'s exports can be restricted via explicit signatures
and an extended subtype relation.  The extended relation allows a
subtype signature to contain an extra exported type variable (e.g.,
``env``) in place of an abbreviation in the supertype signature.  As a
result, the information formerly exposed by the abbreviation becomes
hidden, replaced by an opaque type."

Reading the figure operationally: the *actual* unit's signature knows
``env = name -> value`` (a translucent abbreviation); untrusted clients
see an ascribed signature where ``env`` is an opaque exported type.
:func:`subtype_with_hiding` validates such an ascription by
substituting the abbreviation for the opaque variable in the ascribed
signature and then applying ordinary signature subtyping;
:func:`hide_types` constructs the opaque signature from a translucent
one.
"""

from __future__ import annotations

from repro.lang.errors import TypeCheckError
from repro.types.kinds import OMEGA
from repro.types.subtype import sig_subtype
from repro.types.types import Sig, Type, free_type_vars, subst_type
from repro.extensions.translucent import TranslucentSig
from repro.unite.expand import expand_type


def hide_types(translucent: TranslucentSig,
               names: tuple[str, ...]) -> Sig:
    """Build the opaque signature that hides the given abbreviations.

    Each ``name`` must be one of the translucent signature's
    abbreviations.  Occurrences of the abbreviated type in the
    signature's type expressions are *not* expanded; the name itself
    becomes an exported opaque type variable — the Figure 21 ascription
    for untrusted clients.
    """
    abbrevs = translucent.equations()
    for name in names:
        if name not in abbrevs:
            raise TypeCheckError(
                f"hide_types: '{name}' is not an abbreviation of the "
                f"signature")
    # Expand abbreviations we are NOT hiding, so only the hidden names
    # remain as type variables.
    keep = {n: rhs for n, rhs in abbrevs.items() if n not in names}
    sig = translucent.sig
    new_texports = sig.texports + tuple((n, OMEGA) for n in names)
    return Sig(
        sig.timports,
        tuple((n, expand_type(t, keep)) for n, t in sig.vimports),
        new_texports,
        tuple((n, expand_type(t, keep)) for n, t in sig.vexports),
        expand_type(sig.init, keep),
        sig.depends,
    )


def subtype_with_hiding(specific: TranslucentSig, general: Sig) -> bool:
    """The extended subtype relation of Section 5.2.

    ``general`` may export opaque type variables that ``specific``
    implements as abbreviations.  Those variables are replaced by the
    abbreviations' definitions, removed from the exports, and ordinary
    signature subtyping decides the rest.
    """
    abbrevs = specific.equations()
    hidden = [name for name, _ in general.texports if name in abbrevs]
    mapping: dict[str, Type] = {
        name: expand_type(abbrevs[name], abbrevs) for name in hidden}
    revealed = Sig(
        general.timports,
        tuple((n, subst_type(t, mapping)) for n, t in general.vimports),
        tuple((n, k) for n, k in general.texports if n not in hidden),
        tuple((n, subst_type(t, mapping)) for n, t in general.vexports),
        subst_type(general.init, mapping),
        general.depends,
    )
    # The hidden names must not survive anywhere (e.g. under a nested
    # sig that rebinds them we leave them alone, which is correct).
    return sig_subtype(specific.expand(), revealed)


def opaque_residue(sig: Sig) -> frozenset[str]:
    """Free type variables of a signature — names still unaccounted
    for after hiding.  Useful for diagnosing ill-formed ascriptions."""
    return free_type_vars(sig)
