"""Section 5 extensions to UNITe.

* :mod:`repro.extensions.translucent` — exposing type information
  (Figure 20): signatures carrying abbreviation sections,
* :mod:`repro.extensions.hiding` — hiding type information (Figure 21):
  the extended subtype relation that opaques an abbreviation,
* :mod:`repro.extensions.sharing` — the Section 5.3 discussion of type
  sharing and the diamond import problem, as executable demonstrations.
"""

from repro.extensions.translucent import TranslucentSig, expose_unit_type
from repro.extensions.hiding import hide_types, subtype_with_hiding

__all__ = [
    "TranslucentSig",
    "expose_unit_type",
    "hide_types",
    "subtype_with_hiding",
]
