"""Type sharing and the diamond import problem (Section 5.3).

ML solves the diamond import problem — a ``symbol`` structure feeding
both a ``lexer`` and a ``parser`` whose outputs must agree on the
``sym`` type — with after-the-fact sharing specifications.  "In UNITe,
the diamond import problem is solved by linking lexer, parser, and
symbol together at once."  But "the unit model provides nothing like
after-the-fact sharing specifications; thus, if lexer and parser are
compound units that contain internal instances of symbol, then symbol
is instantiated twice and there is no way to unify the two sym types."

This module builds both programs so tests and benchmarks can observe
the paper's claim executably:

* :func:`diamond_linked_at_once` — one ``symbol`` instance linked to
  both clients; the joiner type-checks.
* :func:`diamond_duplicated` — each client encapsulates its own
  ``symbol``; the joiner is rejected because the two ``sym`` exports
  collide in the link namespace with different sources.
"""

from __future__ import annotations

from repro.types.types import Sig, Type
from repro.unitc.parser import parse_typed_program
from repro.unitc.run import run_typed_expr

_SYMBOL = """
    (unit/t (import) (export (type sym) (val intern (-> str sym))
                             (val sym-name (-> sym str)))
      (datatype sym (mk un str) (mk2 un2 void) first?)
      (define intern (-> str sym) mk)
      (define sym-name (-> sym str) un)
      (void))
"""

_LEXER = """
    (unit/t (import (type sym) (val intern (-> str sym)))
            (export (val lex (-> str sym)))
      (define lex (-> str sym) (lambda ((s str)) (intern s)))
      (void))
"""

_PARSER = """
    (unit/t (import (type sym) (val sym-name (-> sym str)))
            (export (val parse-sym (-> sym str)))
      (define parse-sym (-> sym str) (lambda ((s sym)) (sym-name s)))
      (void))
"""

_SYM_DECLS = "(type sym) (val intern (-> str sym)) (val sym-name (-> sym str))"


def diamond_linked_at_once() -> tuple[object, Type, str]:
    """Link symbol, lexer, and parser in one linking expression.

    The single ``sym`` source flows to both clients, so a joiner that
    feeds the lexer's output to the parser type-checks and runs.
    Returns the ``run_typed``-style triple.
    """
    program = f"""
        (invoke/t
          (compound/t (import) (export)
            (link ((compound/t (import)
                              (export {_SYM_DECLS}
                                      (val lex (-> str sym)))
                     (link ({_SYMBOL}
                            (with)
                            (provides {_SYM_DECLS}))
                           ({_LEXER}
                            (with (type sym) (val intern (-> str sym)))
                            (provides (val lex (-> str sym))))))
                   (with)
                   (provides {_SYM_DECLS} (val lex (-> str sym))))
                  ((compound/t (import {_SYM_DECLS}
                                       (val lex (-> str sym)))
                              (export (val go (-> str str)))
                     (link ({_PARSER}
                            (with (type sym) (val sym-name (-> sym str)))
                            (provides (val parse-sym (-> sym str))))
                           ((unit/t (import (type sym)
                                            (val lex (-> str sym))
                                            (val parse-sym (-> sym str)))
                                    (export (val go (-> str str)))
                              (define go (-> str str)
                                (lambda ((s str)) (parse-sym (lex s))))
                              (void))
                            (with (type sym)
                                  (val lex (-> str sym))
                                  (val parse-sym (-> sym str)))
                            (provides (val go (-> str str))))))
                   (with {_SYM_DECLS} (val lex (-> str sym)))
                   (provides (val go (-> str str)))))))
    """
    expr = parse_typed_program(program)
    return run_typed_expr(expr)


def duplicated_symbol_program_source() -> str:
    """Source of the ill-fated program with two internal symbol
    instances.

    The lexer-side compound and the parser-side compound each
    encapsulate their own ``symbol``; both then provide a type named
    ``sym``.  The joining compound's namespace rejects the duplicate —
    "there is no way to unify the two sym types."
    """
    lexer_side = f"""
        (compound/t (import) (export (type sym) (val lex (-> str sym)))
          (link ({_SYMBOL} (with) (provides {_SYM_DECLS}))
                ({_LEXER}
                 (with (type sym) (val intern (-> str sym)))
                 (provides (val lex (-> str sym))))))
    """
    parser_side = f"""
        (compound/t (import) (export (type sym)
                                     (val parse-sym (-> sym str)))
          (link ({_SYMBOL} (with) (provides {_SYM_DECLS}))
                ({_PARSER}
                 (with (type sym) (val sym-name (-> sym str)))
                 (provides (val parse-sym (-> sym str))))))
    """
    return f"""
        (compound/t (import) (export)
          (link ({lexer_side}
                 (with)
                 (provides (type sym) (val lex (-> str sym))))
                ({parser_side}
                 (with)
                 (provides (type sym) (val parse-sym (-> sym str))))))
    """


def diamond_duplicated() -> None:
    """Type-check the duplicated-symbol program (raises TypeCheckError).

    The duplicate ``sym`` in the joining compound's namespace is the
    observable form of the unification failure Section 5.3 describes.
    """
    from repro.unitc.run import typecheck

    typecheck(duplicated_symbol_program_source())
