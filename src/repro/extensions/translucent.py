"""Exposing type information — translucent types (Section 5.1, Fig 20).

"Consider exporting values of type ``env`` from an ``Environment``
unit such that ``env`` is revealed as a procedure type. ... The unit
``Environment`` does not export the type ``env``.  Instead, the unit
and its signature are extended with an extra section that defines the
abbreviation ``env``.  The resulting unit and signature are equivalent
to the unit and signature that expands ``env`` in all type
expressions."

:class:`TranslucentSig` is a signature plus that extra abbreviation
section; :meth:`TranslucentSig.expand` recovers the equivalent plain
signature, and :func:`translucent_subtype` compares translucent
signatures through their expansions — making "equivalent to the
expansion" literal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import TypeCheckError
from repro.types.subtype import sig_subtype
from repro.types.types import Sig, Type
from repro.unitc.ast import TypedUnitExpr
from repro.unite.depends import check_equations_acyclic
from repro.unite.expand import expand_type


@dataclass(frozen=True)
class TranslucentSig:
    """A signature with an abbreviation section (Figure 20).

    ``abbrevs`` is an ordered sequence of ``(name, rhs)`` abbreviations;
    later abbreviations may reference earlier ones, and the signature's
    type expressions may reference any of them.  The abbreviated names
    are *not* exported type variables — clients that match against the
    expansion see straight through them.
    """

    sig: Sig
    abbrevs: tuple[tuple[str, Type], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.abbrevs]
        if len(set(names)) != len(names):
            raise TypeCheckError("translucent signature: duplicate "
                                 "abbreviation")
        overlap = set(names) & set(self.sig.bound_type_names())
        if overlap:
            raise TypeCheckError(
                "translucent signature: abbreviation shadows interface "
                "type(s): " + ", ".join(sorted(overlap)))
        check_equations_acyclic(dict(self.abbrevs))

    def equations(self) -> dict[str, Type]:
        """The abbreviations as an equation set."""
        return dict(self.abbrevs)

    def expand(self) -> Sig:
        """The equivalent plain signature with abbreviations expanded."""
        eqs = self.equations()
        return Sig(
            self.sig.timports,
            tuple((n, expand_type(t, eqs)) for n, t in self.sig.vimports),
            self.sig.texports,
            tuple((n, expand_type(t, eqs)) for n, t in self.sig.vexports),
            expand_type(self.sig.init, eqs),
            self.sig.depends,
        )


def translucent_subtype(specific: TranslucentSig | Sig,
                        general: TranslucentSig | Sig) -> bool:
    """Subtyping through abbreviations: compare the expansions."""
    s = specific.expand() if isinstance(specific, TranslucentSig) else specific
    g = general.expand() if isinstance(general, TranslucentSig) else general
    return sig_subtype(s, g)


def expose_unit_type(unit: TypedUnitExpr, sig: Sig,
                     name: str) -> TranslucentSig:
    """Expose one of a unit's type equations in its signature.

    ``sig`` is the unit's checked signature; ``name`` must be one of the
    unit's type equations.  The result is the unit's signature with
    ``name`` revealed as an abbreviation — Figure 20's ``Environment``
    construction.  If ``name`` was exported opaquely, it is removed
    from the type exports (the abbreviation supersedes it).
    """
    for eq in unit.equations:
        if eq.name == name:
            rhs = eq.rhs
            break
    else:
        raise TypeCheckError(
            f"expose_unit_type: '{name}' is not a type equation of the "
            f"unit")
    # Inline every *other* equation into the revealed right-hand side so
    # the abbreviation is self-contained.
    others = {eq.name: eq.rhs for eq in unit.equations if eq.name != name}
    revealed = expand_type(rhs, others)
    new_texports = tuple((n, k) for n, k in sig.texports if n != name)
    base = Sig(sig.timports, sig.vimports, new_texports, sig.vexports,
               sig.init, tuple(d for d in sig.depends if d[0] != name))
    return TranslucentSig(base, ((name, revealed),))
