"""The unit-specific reduction rules of Figure 11 (and Figure 8).

Two rules define the whole semantics of units:

* **invoke**: ``invoke (unit import xi export xe val x = e in eb) with
  xw = vw``  reduces to ``[vw/xw](letrec val x = e in eb)`` provided the
  supplied names cover the imports (``xi ⊆ xw``); otherwise a run-time
  error is signalled.

* **compound**: a compound whose two constituents are (atomic) unit
  values reduces to a single merged unit — the constituents'
  definitions are concatenated (alpha-renamed apart) and their
  initialization expressions sequenced.  This is exactly the graphical
  reduction of Figure 8, where the boxes for ``Database`` and
  ``NumberInfo`` collapse into one box.

These functions are *pure syntax transformations*; the small-step
machine (:mod:`repro.lang.machine`) drives them, and the figure
benchmarks print the before/after terms.
"""

from __future__ import annotations

from repro import limits as _limits
from repro.lang.ast import Expr, Letrec, Seq, Var, seq_of
from repro.lang.errors import UnitLinkError
from repro.lang.subst import fresh_like, free_vars, substitute
from repro.obs import current as _obs_current
from repro.serve import chaos as _chaos
from repro.units import cache as _cache
from repro.units.ast import CompoundExpr, InvokeExpr, UnitExpr


def reduce_invoke(unit: UnitExpr,
                  links: dict[str, Expr]) -> Expr:
    """Apply the invoke reduction rule.

    ``links`` maps supplied import names to value *syntax*.  The result
    is the letrec of Figure 11 with imported variables replaced by the
    supplied values.  Raises :class:`UnitLinkError` when the supplied
    names do not cover the unit's imports.
    """
    missing = [name for name in unit.imports if name not in links]
    if missing:
        raise UnitLinkError(
            "invoke: unit imports not satisfied: " + ", ".join(missing))
    budget = _limits.current()
    if budget is not None:
        budget.check_deadline(getattr(unit, "loc", None))
    col = _obs_current()
    if col is None:
        body = Letrec(unit.defns, unit.init)
        mapping = {name: links[name] for name in unit.imports}
        return substitute(body, mapping)
    # A span, not a flat event: the substitution work this rule
    # triggers (and any nested reductions the driver performs inside
    # it) shows up as this node's subtree in `repro trace report`.
    with col.span("reduce.invoke", {
            "imports": len(unit.imports), "defns": len(unit.defns)}):
        body = Letrec(unit.defns, unit.init)
        mapping = {name: links[name] for name in unit.imports}
        return substitute(body, mapping)


def _rename_block(defns: tuple[tuple[str, Expr], ...], init: Expr,
                  renames: dict[str, str]):
    """Rename defined variables throughout a definitions+init block."""
    if not renames:
        return defns, init
    mapping = {old: Var(new) for old, new in renames.items()}
    new_defns = tuple((renames.get(name, name), substitute(rhs, mapping))
                      for name, rhs in defns)
    return new_defns, substitute(init, mapping)


def merge_compound(compound: CompoundExpr, first: UnitExpr,
                   second: UnitExpr) -> UnitExpr:
    """Apply the compound reduction rule (Figure 11, second rule).

    ``first`` and ``second`` are the constituent unit values.  The rule
    requires that each constituent *needs no more than* its ``with``
    clause and *provides at least* its ``provides`` clause; violations
    raise :class:`UnitLinkError` (these are the run-time link checks of
    the dynamically typed calculus).

    Renaming: variables named in a ``provides`` clause are linkage
    points and keep their names; every other definition is private to
    its constituent and is renamed when it would collide with the
    merged unit's imports, with the other constituent's definitions, or
    with linkage names.
    """
    for unit, clause, which in ((first, compound.first, "first"),
                                (second, compound.second, "second")):
        extra = [n for n in unit.imports if n not in clause.withs]
        if extra:
            raise UnitLinkError(
                f"compound: {which} constituent imports exceed its with "
                f"clause: " + ", ".join(extra))
        missing = [n for n in clause.provides if n not in unit.exports]
        if missing:
            raise UnitLinkError(
                f"compound: {which} constituent does not provide: "
                + ", ".join(missing))

    budget = _limits.current()
    if budget is not None:
        # Deadline polling stays *before* the cache lookup so a
        # budget-governed run observes its deadline even when the merge
        # itself would be a cache hit.
        budget.check_deadline(getattr(compound, "loc", None))
    if _chaos._armed:
        # Mid-link exhaustion fires before the cache lookup, so an
        # injected failure can never be stored.
        _chaos.exhaust("reduce.merge_compound")
    col = _obs_current()
    if col is None:
        return _cache.cached_link(
            compound, first, second,
            lambda: _merge_bodies(compound, first, second, None))
    # The span fires on hits too — only the nested `cache.*` event
    # distinguishes a cached merge, so non-cache event counts stay
    # cache-invariant.
    with col.span("reduce.compound", {
            "defns": len(first.defns) + len(second.defns)}) as sp:
        return _cache.cached_link(
            compound, first, second,
            lambda: _merge_bodies(compound, first, second, sp))


def _merge_bodies(compound: CompoundExpr, first: UnitExpr,
                  second: UnitExpr, sp) -> UnitExpr:
    """The rename-and-concatenate work of the compound rule."""
    linkage = (set(compound.imports) | set(compound.first.provides)
               | set(compound.second.provides))
    taken = set(linkage)
    taken |= free_vars(first) | free_vars(second)

    def plan_renames(unit: UnitExpr, provides: tuple[str, ...]):
        keep = set(provides)
        renames: dict[str, str] = {}
        for name in unit.defined:
            if name in keep:
                taken.add(name)
                continue
            if name in taken:
                fresh = fresh_like(name, taken)
                renames[name] = fresh
                taken.add(fresh)
            else:
                taken.add(name)
        return renames

    renames1 = plan_renames(first, compound.first.provides)
    defns1, init1 = _rename_block(first.defns, first.init, renames1)
    renames2 = plan_renames(second, compound.second.provides)
    defns2, init2 = _rename_block(second.defns, second.init, renames2)

    if sp is not None:
        sp.annotate(renamed=len(renames1) + len(renames2))
    return UnitExpr(
        imports=compound.imports,
        exports=compound.exports,
        defns=defns1 + defns2,
        init=seq_of(init1, init2),
        loc=compound.loc,
    )


def is_unit_value(expr: Expr) -> bool:
    """Is ``expr`` an atomic unit expression (hence a value)?"""
    return isinstance(expr, UnitExpr)


def reduce_compound_expr(expr: CompoundExpr) -> UnitExpr:
    """Reduce a compound whose constituents are already unit values.

    A convenience for the figure demonstrations: requires both clause
    expressions to be syntactic ``unit`` forms.
    """
    first, second = expr.first.expr, expr.second.expr
    if not (isinstance(first, UnitExpr) and isinstance(second, UnitExpr)):
        raise UnitLinkError(
            "reduce_compound_expr: constituents are not unit values yet")
    return merge_compound(expr, first, second)


def reduce_invoke_expr(expr: InvokeExpr) -> Expr:
    """Reduce an invoke whose target is a unit value and whose link
    expressions are values (a convenience for demonstrations)."""
    unit = expr.expr
    if not isinstance(unit, UnitExpr):
        raise UnitLinkError("reduce_invoke_expr: target is not a unit value")
    return reduce_invoke(unit, dict(expr.links))
