"""Compiling units to functions over reference cells (Section 4.1.6).

"In MzScheme's implementation of UNITd, units are compiled by
transforming them into functions.  The unit's imported and exported
variables are implemented as first-class reference cells that are
externally created and passed to the function when the unit is invoked.
The function is responsible for filling the export cells with exported
values and for remembering the import cells for accessing imports
later.  The return value of the function is a closure that evaluates
the unit's initialization expression."  Figure 12 illustrates the
transformation; :func:`compile_unit` performs it.

The compiled protocol
---------------------

A compiled unit is a two-argument procedure::

    (lambda (import-table export-table) ... (lambda () init'))

Tables are string hash tables mapping variable names to boxes.  The
unit reads its import cells out of the import table (a missing entry is
the "unsatisfied import" run-time error of Section 4.1.3), adopts the
export cells present in the export table, creates private cells for
exports the context hid, fills every export cell by evaluating its
definitions, and returns the initialization thunk.

A compiled compound (:func:`compile_compound`) is a procedure of the
same shape that "encapsulates a list of constituent units and a closure
that propagates import and export cells to the constituent units,
creating new cells to implement variables in the constituents that are
hidden by the compound unit".

Code sharing: the transformation is performed once per ``unit``
expression; linking or invoking the same compiled unit many times
reuses the single compiled body, as the paper emphasizes (footnote 8).
The output is plain core language — it contains no unit forms — so it
demonstrates that units are compiled away.

Evaluation-order note: the transformation evaluates hidden definitions
(as a ``letrec``) before filling export cells.  Under the Harper–Stone
valuability restriction definition expressions are effect-free and
never reference unit variables outside a procedure body, so this
reordering is unobservable; :func:`repro.units.check.check_unit`
guarantees it.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Expr,
    If,
    Lambda,
    Let,
    Letrec,
    Lit,
    Seq,
    SetBang,
    Var,
    seq_of,
)
from repro.lang import terms as _terms
from repro.lang.subst import fresh_like, free_vars
from repro.obs import span as _obs_span
from repro.units import cache as _cache
from repro.units.ast import CompoundExpr, InvokeExpr, LinkClause, UnitExpr

# ---------------------------------------------------------------------------
# Small constructors for the generated code
#
# The transformation emits the same tiny fragments over and over —
# ``(void)``, ``(hash-get t "name")``, the protocol primitives' Var
# nodes, string literals naming unit variables.  Since AST nodes are
# immutable they can be hash-consed: one shared node per distinct
# fragment instead of a fresh allocation per occurrence.  For a chain
# of N linked units the generated wiring is O(N^2) nodes, so this is a
# large constant-factor win on exactly the programs where compilation
# is slowest.  Gated on the term-cache switch so ``--no-term-cache``
# still exercises the share-nothing path.
# ---------------------------------------------------------------------------

_SHARE_LIMIT = 4096
_shared_vars: dict[str, Var] = {}
_shared_strs: dict[str, Lit] = {}


def _callee(name: str) -> Var:
    if not _terms._enabled:
        return Var(name)
    var = _shared_vars.get(name)
    if var is None:
        if len(_shared_vars) >= _SHARE_LIMIT:
            _shared_vars.clear()
        var = _shared_vars[name] = Var(name)
    return var


def _call(name: str, *args: Expr) -> App:
    return App(_callee(name), tuple(args))


def _str(text: str) -> Lit:
    if not _terms._enabled:
        return Lit(text)
    lit = _shared_strs.get(text)
    if lit is None:
        if len(_shared_strs) >= _SHARE_LIMIT:
            _shared_strs.clear()
        lit = _shared_strs[text] = Lit(text)
    return lit


_VOID_CALL = App(Var("void"), ())


def _void() -> Expr:
    return _VOID_CALL if _terms._enabled else _call("void")


def compile_expr(expr: Expr) -> Expr:
    """Compile away every unit form in an arbitrary expression.

    Units become table-protocol functions, compounds become wiring
    functions, and invokes become table construction plus a call.  The
    result is a pure core-language expression.
    """
    if isinstance(expr, (Lit, Var)):
        return expr
    if isinstance(expr, Lambda):
        return Lambda(expr.params, compile_expr(expr.body), expr.loc)
    if isinstance(expr, App):
        return App(compile_expr(expr.fn),
                   tuple(compile_expr(a) for a in expr.args), expr.loc)
    if isinstance(expr, If):
        return If(compile_expr(expr.test), compile_expr(expr.then),
                  compile_expr(expr.orelse), expr.loc)
    if isinstance(expr, (Let, Letrec)):
        node = type(expr)
        return node(tuple((n, compile_expr(e)) for n, e in expr.bindings),
                    compile_expr(expr.body), expr.loc)
    if isinstance(expr, SetBang):
        return SetBang(expr.name, compile_expr(expr.expr), expr.loc)
    if isinstance(expr, Seq):
        return Seq(tuple(compile_expr(e) for e in expr.exprs), expr.loc)
    if isinstance(expr, UnitExpr):
        return compile_unit(expr)
    if isinstance(expr, CompoundExpr):
        return compile_compound(expr)
    if isinstance(expr, InvokeExpr):
        return compile_invoke(expr)
    raise TypeError(f"compile_expr: unknown expression {expr!r}")


# ---------------------------------------------------------------------------
# Rewriting unit-variable references to cell operations
# ---------------------------------------------------------------------------


def _rewrite(expr: Expr, cells: dict[str, str]) -> Expr:
    """Rewrite references to celled variables into cell operations.

    ``cells`` maps a unit variable name to the name of the local
    variable holding its cell; references become ``(unbox cell)`` and
    assignments become ``(set-box! cell e)``.  Binders shadow.
    """
    if not cells:
        return expr
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Var):
        if expr.name in cells:
            return _call("unbox", Var(cells[expr.name]))
        return expr
    if isinstance(expr, Lambda):
        inner = {k: v for k, v in cells.items() if k not in expr.params}
        return Lambda(expr.params, _rewrite(expr.body, inner), expr.loc)
    if isinstance(expr, App):
        return App(_rewrite(expr.fn, cells),
                   tuple(_rewrite(a, cells) for a in expr.args), expr.loc)
    if isinstance(expr, If):
        return If(_rewrite(expr.test, cells), _rewrite(expr.then, cells),
                  _rewrite(expr.orelse, cells), expr.loc)
    if isinstance(expr, Let):
        new_bindings = tuple((n, _rewrite(e, cells)) for n, e in expr.bindings)
        inner = {k: v for k, v in cells.items()
                 if k not in {n for n, _ in expr.bindings}}
        return Let(new_bindings, _rewrite(expr.body, inner), expr.loc)
    if isinstance(expr, Letrec):
        inner = {k: v for k, v in cells.items()
                 if k not in {n for n, _ in expr.bindings}}
        new_bindings = tuple((n, _rewrite(e, inner)) for n, e in expr.bindings)
        return Letrec(new_bindings, _rewrite(expr.body, inner), expr.loc)
    if isinstance(expr, SetBang):
        if expr.name in cells:
            return _call("set-box!", Var(cells[expr.name]),
                         _rewrite(expr.expr, cells))
        return SetBang(expr.name, _rewrite(expr.expr, cells), expr.loc)
    if isinstance(expr, Seq):
        return Seq(tuple(_rewrite(e, cells) for e in expr.exprs), expr.loc)
    if isinstance(expr, UnitExpr):
        bound = set(expr.imports) | set(expr.defined)
        inner = {k: v for k, v in cells.items() if k not in bound}
        return UnitExpr(expr.imports, expr.exports,
                        tuple((n, _rewrite(e, inner)) for n, e in expr.defns),
                        _rewrite(expr.init, inner), expr.loc)
    if isinstance(expr, CompoundExpr):
        return CompoundExpr(
            expr.imports, expr.exports,
            LinkClause(_rewrite(expr.first.expr, cells),
                       expr.first.withs, expr.first.provides),
            LinkClause(_rewrite(expr.second.expr, cells),
                       expr.second.withs, expr.second.provides),
            expr.loc)
    if isinstance(expr, InvokeExpr):
        return InvokeExpr(_rewrite(expr.expr, cells),
                          tuple((n, _rewrite(e, cells))
                                for n, e in expr.links), expr.loc)
    raise TypeError(f"_rewrite: unknown expression {expr!r}")


# ---------------------------------------------------------------------------
# The unit transformation (Figure 12)
# ---------------------------------------------------------------------------


def compile_unit(unit: UnitExpr) -> Expr:
    """Transform an atomic unit into its table-protocol function."""
    with _obs_span("unit.compile", {
            "form": "unit", "imports": len(unit.imports),
            "exports": len(unit.exports), "defns": len(unit.defns)}):
        return _cache.cached_compile(unit, lambda: _compile_unit(unit))


def _compile_unit(unit: UnitExpr) -> Expr:
    avoid = set(free_vars(unit)) | set(unit.imports) | set(unit.defined)
    itab = fresh_like("import-table", avoid)
    avoid.add(itab)
    etab = fresh_like("export-table", avoid)
    avoid.add(etab)

    cells: dict[str, str] = {}
    cell_bindings: list[tuple[str, Expr]] = []
    for name in unit.imports:
        cell_var = fresh_like(f"{name}-cell", avoid)
        avoid.add(cell_var)
        cells[name] = cell_var
        cell_bindings.append((cell_var, _call("hash-get", Var(itab),
                                              _str(name))))
    exported = set(unit.exports)
    for name in unit.exports:
        cell_var = fresh_like(f"{name}-cell", avoid)
        avoid.add(cell_var)
        cells[name] = cell_var
        adopt = If(_call("hash-has?", Var(etab), _str(name)),
                   _call("hash-get", Var(etab), _str(name)),
                   _call("box", _void()))
        cell_bindings.append((cell_var, adopt))

    hidden = [(name, rhs) for name, rhs in unit.defns
              if name not in exported]

    # Rewrite definition bodies and init: celled variables go through
    # their cells; hidden definitions stay letrec-bound by name.
    hidden_names = {name for name, _ in hidden}
    live_cells = {k: v for k, v in cells.items() if k not in hidden_names}
    new_hidden = tuple(
        (name, compile_expr(_rewrite(rhs, live_cells)))
        for name, rhs in hidden)
    fill_stmts: list[Expr] = []
    for name, rhs in unit.defns:
        if name in exported:
            fill_stmts.append(
                _call("set-box!", Var(cells[name]),
                      compile_expr(_rewrite(rhs, live_cells))))
    init = compile_expr(_rewrite(unit.init, live_cells))
    thunk = Lambda((), init)

    body: Expr = seq_of(*fill_stmts, thunk) if fill_stmts else thunk
    if new_hidden:
        body = Letrec(new_hidden, body)
    if cell_bindings:
        body = _nested_let(cell_bindings, body)
    return Lambda((itab, etab), body, unit.loc)


def _nested_let(bindings: list[tuple[str, Expr]], body: Expr) -> Expr:
    """Sequential lets (let*), since cell bindings must not shadow the
    table variables referenced by later bindings."""
    for name, rhs in reversed(bindings):
        body = Let(((name, rhs),), body)
    return body


# ---------------------------------------------------------------------------
# The compound transformation
# ---------------------------------------------------------------------------


def compile_compound(compound: CompoundExpr) -> Expr:
    """Transform a compound into a wiring function over tables."""
    with _obs_span("unit.compile", {
            "form": "compound", "imports": len(compound.imports),
            "exports": len(compound.exports)}):
        return _cache.cached_compile(
            compound, lambda: _compile_compound(compound))


def _compile_compound(compound: CompoundExpr) -> Expr:
    avoid = set(free_vars(compound))
    names = {}
    for base in ("import-table", "export-table", "ns",
                 "i1", "e1", "i2", "e2", "t1", "t2", "u1", "u2"):
        fresh = fresh_like(base, avoid)
        avoid.add(fresh)
        names[base] = fresh

    stmts: list[Expr] = []
    ns = names["ns"]
    exported = set(compound.exports)

    for name in compound.imports:
        stmts.append(_call("hash-put!", Var(ns), _str(name),
                           _call("hash-get", Var(names["import-table"]),
                                 _str(name))))
    for name in compound.first.provides + compound.second.provides:
        if name in exported:
            cell = If(_call("hash-has?", Var(names["export-table"]),
                            _str(name)),
                      _call("hash-get", Var(names["export-table"]),
                            _str(name)),
                      _call("box", _void()))
        else:
            cell = _call("box", _void())
        stmts.append(_call("hash-put!", Var(ns), _str(name), cell))

    def wire(table: str, wanted: tuple[str, ...]) -> list[Expr]:
        tvar, nsvar = _callee(table), _callee(ns)
        return [_call("hash-put!", tvar, _str(name),
                      _call("hash-get", nsvar, _str(name)))
                for name in wanted]

    stmts += wire(names["i1"], compound.first.withs)
    stmts += wire(names["e1"], compound.first.provides)
    stmts += wire(names["i2"], compound.second.withs)
    stmts += wire(names["e2"], compound.second.provides)

    instantiate = Let(
        ((names["t1"], App(Var(names["u1"]),
                           (Var(names["i1"]), Var(names["e1"])))),),
        Let(
            ((names["t2"], App(Var(names["u2"]),
                               (Var(names["i2"]), Var(names["e2"])))),),
            Lambda((), seq_of(App(Var(names["t1"]), ()),
                              App(Var(names["t2"]), ())))))

    body = Let(
        ((ns, _call("makeStringHashTable")),
         (names["i1"], _call("makeStringHashTable")),
         (names["e1"], _call("makeStringHashTable")),
         (names["i2"], _call("makeStringHashTable")),
         (names["e2"], _call("makeStringHashTable"))),
        seq_of(*stmts, instantiate))

    wiring = Lambda((names["import-table"], names["export-table"]), body)
    return Let(
        ((names["u1"], compile_expr(compound.first.expr)),
         (names["u2"], compile_expr(compound.second.expr))),
        wiring, compound.loc)


# ---------------------------------------------------------------------------
# The invoke transformation
# ---------------------------------------------------------------------------


def compile_invoke(invoke: InvokeExpr) -> Expr:
    """Transform an invoke into table construction plus a call."""
    with _obs_span("unit.compile", {
            "form": "invoke", "links": len(invoke.links)}):
        return _cache.cached_compile(invoke, lambda: _compile_invoke(invoke))


def _compile_invoke(invoke: InvokeExpr) -> Expr:
    avoid = set(free_vars(invoke))
    itab = fresh_like("invoke-imports", avoid)
    avoid.add(itab)
    etab = fresh_like("invoke-exports", avoid)
    avoid.add(etab)
    unit_var = fresh_like("unit-fn", avoid)

    stmts: list[Expr] = []
    for name, rhs in invoke.links:
        stmts.append(_call("hash-put!", Var(itab), _str(name),
                           _call("box", compile_expr(rhs))))
    run = App(App(Var(unit_var), (Var(itab), Var(etab))), ())
    return Let(
        ((unit_var, compile_expr(invoke.expr)),),
        Let(((itab, _call("makeStringHashTable")),
             (etab, _call("makeStringHashTable"))),
            seq_of(*stmts, run) if stmts else run),
        invoke.loc)
