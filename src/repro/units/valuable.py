"""The Harper–Stone valuability restriction on unit definitions.

Section 4.1.1: in each definition ``val x = e``, the expression ``e``
must be *valuable* — "evaluating the expression terminates, does not
incur any computational effects (divergence, printing, etc.), and does
not refer to variables whose values may still be undetermined (due to
an ordering of the mutually recursive definitions)" — with the
restriction that imported and defined variable names are not considered
valuable.

The predicate here is a sound syntactic approximation, as in Harper and
Stone's ML semantics: literals, procedures, and unit expressions are
valuable; variables are valuable unless they might still be undefined;
conditionals, sequences, and blocks of valuable parts are valuable;
applications are conservatively rejected (they may diverge or have
effects).

MzScheme itself lifts this restriction and signals a run-time error on
premature variable references instead (footnote 7); the interpreter in
:mod:`repro.lang.interp` implements that lenient behaviour, while
:func:`repro.units.check.check_expr` enforces the strict calculus rule
unless asked not to.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Expr,
    If,
    Lambda,
    Let,
    Letrec,
    Lit,
    Seq,
    SetBang,
    Var,
)
from repro.units.ast import CompoundExpr, InvokeExpr, UnitExpr

#: Primitives whose application to valuable arguments is valuable:
#: they terminate and have no observable effects (allocation included,
#: following Harper–Stone's treatment of constructors and ref cells).
BENIGN_PRIMS = frozenset({
    "+", "-", "*", "modulo", "quotient", "min", "max", "abs",
    "add1", "sub1", "=", "<", ">", "<=", ">=", "zero?", "number?",
    "not", "boolean?", "eq?", "equal?",
    "string?", "string-append", "string-length", "string=?",
    "substring", "number->string", "string->number",
    "cons", "car", "cdr", "pair?", "null?", "list", "length",
    "reverse", "append", "list-ref",
    "box", "box?", "makeStringHashTable",
    "make-variant", "variant-first?",
    "void", "void?",
})


def is_valuable(expr: Expr, unstable: frozenset[str]) -> bool:
    """Decide whether ``expr`` is valuable.

    ``unstable`` is the set of variable names that may still be
    undetermined at evaluation time — for a unit definition, the unit's
    imported and defined variables.
    """
    if isinstance(expr, Lit):
        return True
    if isinstance(expr, Var):
        return expr.name not in unstable
    if isinstance(expr, Lambda):
        # A procedure is a value regardless of its body.
        return True
    if isinstance(expr, UnitExpr):
        # A unit expression is a value (Section 4.1.1).
        return True
    if isinstance(expr, If):
        return (is_valuable(expr.test, unstable)
                and is_valuable(expr.then, unstable)
                and is_valuable(expr.orelse, unstable))
    if isinstance(expr, Seq):
        return all(is_valuable(e, unstable) for e in expr.exprs)
    if isinstance(expr, Let):
        inner = unstable - {name for name, _ in expr.bindings}
        return (all(is_valuable(rhs, unstable) for _, rhs in expr.bindings)
                and is_valuable(expr.body, inner))
    if isinstance(expr, Letrec):
        # The letrec's own bindings are settled once its body runs.
        inner = unstable - {name for name, _ in expr.bindings}
        return (all(is_valuable(rhs, inner) for _, rhs in expr.bindings)
                and is_valuable(expr.body, inner))
    if isinstance(expr, App):
        # Applications of benign primitives to valuable arguments are
        # valuable (terminating, effect-free); anything else may
        # diverge or have effects.
        if isinstance(expr.fn, Var) and expr.fn.name in BENIGN_PRIMS \
                and expr.fn.name not in unstable:
            return all(is_valuable(a, unstable) for a in expr.args)
        return False
    if isinstance(expr, (SetBang, InvokeExpr)):
        # Assignment is an effect; invocation runs arbitrary
        # initialization code.
        return False
    if isinstance(expr, CompoundExpr):
        # compound only evaluates its constituent expressions.
        return (is_valuable(expr.first.expr, unstable)
                and is_valuable(expr.second.expr, unstable))
    return False
