"""Static analysis of unit programs: linkage diagnostics.

The paper's workflow (DrScheme assembling many components) invites
tooling: which imports does a unit actually use?  Which provided
variables does nothing consume?  This module answers those questions
over UNITd programs:

* :func:`used_imports` / :func:`unused_imports` — per-unit import use,
* :func:`dead_provides` — compound-level: provided names that neither
  the sibling clause consumes nor the compound exports,
* :func:`lint` — walk a whole program and collect diagnostics,
* :func:`linkage_summary` — a human-readable report of a compound
  tree's wiring (the textual cousin of the link-graph rendering).

Diagnostics are advisory: all of these programs are *legal* (Figure 10
deliberately permits unused withs — "need no more than the expected
imports"), which is exactly why a linter is useful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Expr, Letrec
from repro.lang.subst import free_vars
from repro.units.ast import CompoundExpr, InvokeExpr, UnitExpr, unit_children


@dataclass(frozen=True)
class Diagnostic:
    """One advisory finding."""

    severity: str  # "warning" | "info"
    where: str     # a path like "program/compound[1]/unit"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.where}: {self.message}"


def used_imports(unit: UnitExpr) -> frozenset[str]:
    """The subset of a unit's imports referenced by its body."""
    body = Letrec(unit.defns, unit.init)
    return free_vars(body) & frozenset(unit.imports)


def unused_imports(unit: UnitExpr) -> tuple[str, ...]:
    """Imports the unit declares but never references, in order."""
    used = used_imports(unit)
    return tuple(name for name in unit.imports if name not in used)


def unexported_definitions(unit: UnitExpr) -> tuple[str, ...]:
    """Defined names that are neither exported nor referenced.

    A definition referenced by another definition (or the init) is
    considered used even if not exported.
    """
    exported = set(unit.exports)
    referenced: set[str] = set()
    for index, (_, rhs) in enumerate(unit.defns):
        referenced |= free_vars(rhs)
    referenced |= free_vars(unit.init)
    return tuple(name for name in unit.defined
                 if name not in exported and name not in referenced)


def dead_provides(compound: CompoundExpr) -> tuple[str, ...]:
    """Provided names with no consumer.

    A provide is live when the other clause lists it in its ``with``
    set or the compound exports it.
    """
    exported = set(compound.exports)
    dead: list[str] = []
    for clause, other in ((compound.first, compound.second),
                          (compound.second, compound.first)):
        consumers = set(other.withs) | exported
        dead.extend(name for name in clause.provides
                    if name not in consumers)
    return tuple(dead)


def lint(expr: Expr, where: str = "program") -> list[Diagnostic]:
    """Collect advisory diagnostics over a whole program."""
    out: list[Diagnostic] = []
    if isinstance(expr, UnitExpr):
        for name in unused_imports(expr):
            out.append(Diagnostic(
                "warning", where, f"import '{name}' is never referenced"))
        for name in unexported_definitions(expr):
            out.append(Diagnostic(
                "warning", where,
                f"definition '{name}' is neither exported nor used"))
        for index, (_, rhs) in enumerate(expr.defns):
            out.extend(lint(rhs, f"{where}/defn[{index}]"))
        out.extend(lint(expr.init, f"{where}/init"))
        return out
    if isinstance(expr, CompoundExpr):
        for name in dead_provides(expr):
            out.append(Diagnostic(
                "warning", where,
                f"provided variable '{name}' has no consumer"))
        for label, clause in (("first", expr.first), ("second", expr.second)):
            inner = clause.expr
            if isinstance(inner, UnitExpr):
                declared = set(clause.withs)
                actual = set(inner.imports)
                for name in sorted(declared - actual):
                    out.append(Diagnostic(
                        "info", f"{where}/{label}",
                        f"with-variable '{name}' is not imported by the "
                        f"constituent"))
            out.extend(lint(inner, f"{where}/{label}"))
        return out
    if isinstance(expr, InvokeExpr):
        target = expr.expr
        if isinstance(target, UnitExpr):
            supplied = {name for name, _ in expr.links}
            for name in sorted(supplied - set(target.imports)):
                out.append(Diagnostic(
                    "info", where,
                    f"invoke supplies '{name}', which the unit does not "
                    f"import"))
        out.extend(lint(expr.expr, f"{where}/target"))
        for name, rhs in expr.links:
            out.extend(lint(rhs, f"{where}/link[{name}]"))
        return out
    try:
        children = unit_children(expr)
    except TypeError:
        return out
    for index, child in enumerate(children):
        out.extend(lint(child, f"{where}/{index}"))
    return out


def linkage_summary(expr: Expr, indent: int = 0) -> str:
    """Render a compound tree's wiring as indented text."""
    pad = "  " * indent
    if isinstance(expr, UnitExpr):
        return (f"{pad}unit imports({', '.join(expr.imports)}) "
                f"exports({', '.join(expr.exports)})")
    if isinstance(expr, CompoundExpr):
        lines = [f"{pad}compound imports({', '.join(expr.imports)}) "
                 f"exports({', '.join(expr.exports)})"]
        for label, clause in (("first", expr.first), ("second", expr.second)):
            lines.append(
                f"{pad}  {label}: with({', '.join(clause.withs)}) "
                f"provides({', '.join(clause.provides)})")
            lines.append(linkage_summary(clause.expr, indent + 2))
        return "\n".join(lines)
    if isinstance(expr, InvokeExpr):
        names = ", ".join(name for name, _ in expr.links)
        return (f"{pad}invoke with({names})\n"
                + linkage_summary(expr.expr, indent + 1))
    return f"{pad}<expression>"
