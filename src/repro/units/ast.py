"""Abstract syntax of UNITd's three unit-specific forms (Figure 9).

The forms are core expressions (units are first-class values), so each
node subclasses :class:`repro.lang.ast.Expr`:

* :class:`UnitExpr` — ``unit import xi ... export xe ... val x = e ... e``
* :class:`CompoundExpr` — the two-constituent linking form
* :class:`InvokeExpr` — invocation with explicit import links

``CompoundExpr`` is deliberately restricted to exactly two constituents
with name-matched linking, as in the paper's calculus.  The n-ary,
renaming MzScheme generalization lives in
:mod:`repro.linking.compound_n` and elaborates into this form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import Expr
from repro.lang.errors import SrcLoc


@dataclass(frozen=True)
class UnitExpr(Expr):
    """An atomic unit: unevaluated definitions behind an import/export
    interface.

    ``defns`` is a sequence of ``(name, expr)`` pairs — the ``val x = e``
    definitions — and ``init`` is the initialization expression evaluated
    when the unit is invoked.  Imports are bound in every definition and
    in ``init``; exports must be defined within the unit (checked by
    :func:`repro.units.check.check_unit`).
    """

    imports: tuple[str, ...]
    exports: tuple[str, ...]
    defns: tuple[tuple[str, Expr], ...]
    init: Expr
    loc: SrcLoc | None = field(default=None, compare=False)

    @property
    def defined(self) -> tuple[str, ...]:
        """The variables defined by this unit, in definition order."""
        # Memoized on the frozen instance: the optimizer and linker
        # consult this on every pass, and defns never mutates.
        cached = self.__dict__.get("_defined")
        if cached is None:
            cached = tuple(name for name, _ in self.defns)
            object.__setattr__(self, "_defined", cached)
        return cached


@dataclass(frozen=True)
class LinkClause:
    """One ``e with xw ... provides xp ...`` line of a compound form.

    ``withs`` lists the variables the constituent is expected to import;
    ``provides`` lists the variables it is expected to export.
    """

    expr: Expr
    withs: tuple[str, ...]
    provides: tuple[str, ...]
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class CompoundExpr(Expr):
    """The two-unit linking form of Section 4.1.2.

    Variables are linked *by name*: the ``withs`` of the first clause
    must be drawn from the compound's imports plus the second clause's
    ``provides``, and symmetrically for the second clause.  The
    compound's exports must be drawn from the union of the two
    ``provides`` sets.  These constraints are enforced statically by
    :func:`repro.units.check.check_compound`.
    """

    imports: tuple[str, ...]
    exports: tuple[str, ...]
    first: LinkClause
    second: LinkClause
    loc: SrcLoc | None = field(default=None, compare=False)


@dataclass(frozen=True)
class InvokeExpr(Expr):
    """Invocation: ``invoke e with x = e ...`` (Section 4.1.3).

    ``links`` supplies a value expression for each import the unit
    requires; supplying too few is a *run-time* error (the invoked unit
    is not known statically in UNITd).
    """

    expr: Expr
    links: tuple[tuple[str, Expr], ...]
    loc: SrcLoc | None = field(default=None, compare=False)


def unit_children(expr: Expr) -> tuple[Expr, ...]:
    """Direct subexpressions of any expression, including unit forms.

    This extends :func:`repro.lang.ast.children` to the three unit
    forms; use it for generic traversals over full UNITd programs.
    """
    from repro.lang import ast as core

    if isinstance(expr, UnitExpr):
        return tuple(e for _, e in expr.defns) + (expr.init,)
    if isinstance(expr, CompoundExpr):
        return (expr.first.expr, expr.second.expr)
    if isinstance(expr, InvokeExpr):
        return (expr.expr, *(e for _, e in expr.links))
    return core.children(expr)
