"""Context-sensitive checking for UNITd — Figure 10 of the paper.

The judgments of Figure 10 ensure, prior to evaluation, that

* no variable is multiply imported, defined, or exported in a unit and
  that every exported variable is defined (``check_unit``),
* a compound's link clause is *locally consistent*: each constituent's
  ``with`` set draws only from the compound's imports and the other
  constituent's ``provides``, and the compound's exports draw only from
  the two ``provides`` sets (``check_compound``),
* invoke's import links are distinct (``check_invoke``),

and recursively that every subexpression is well formed.  The checks
are purely syntactic — which units actually flow into a compound is
unknown until run time in the dynamically typed calculus, so Figure 11
re-checks the with/provides contract when linking happens.
"""

from __future__ import annotations

from repro import limits as _limits
from repro.lang.ast import (
    App,
    Expr,
    If,
    Lambda,
    Let,
    Letrec,
    Lit,
    Seq,
    SetBang,
    Var,
)
from repro.lang.errors import CheckError
from repro.obs import span as _obs_span
from repro.units import cache as _cache
from repro.units.ast import CompoundExpr, InvokeExpr, UnitExpr
from repro.units.valuable import is_valuable


def _span_fields(expr: Expr, **fields: object) -> dict[str, object]:
    """Span payload with the reader source location, when the AST
    carries one (``repro trace report`` prints it for failures)."""
    loc = getattr(expr, "loc", None)
    if loc is not None:
        fields["loc"] = str(loc)
    return fields


def _require_distinct(names: tuple[str, ...], what: str, expr: Expr) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise CheckError(f"{what}: duplicate name '{name}'",
                             getattr(expr, "loc", None))
        seen.add(name)


def check_expr(expr: Expr, strict_valuable: bool = True) -> None:
    """Check an arbitrary expression, recurring into unit forms.

    ``strict_valuable`` enforces the Harper–Stone valuability
    restriction on unit definitions (the calculus rule); pass ``False``
    for MzScheme's lenient behaviour, which defers premature-reference
    detection to run time.
    """
    if isinstance(expr, (Lit, Var)):
        return
    if isinstance(expr, Lambda):
        check_expr(expr.body, strict_valuable)
        return
    if isinstance(expr, App):
        check_expr(expr.fn, strict_valuable)
        for arg in expr.args:
            check_expr(arg, strict_valuable)
        return
    if isinstance(expr, If):
        for sub in (expr.test, expr.then, expr.orelse):
            check_expr(sub, strict_valuable)
        return
    if isinstance(expr, (Let, Letrec)):
        _require_distinct(tuple(name for name, _ in expr.bindings),
                          "block binding", expr)
        for _, rhs in expr.bindings:
            check_expr(rhs, strict_valuable)
        check_expr(expr.body, strict_valuable)
        return
    if isinstance(expr, SetBang):
        check_expr(expr.expr, strict_valuable)
        return
    if isinstance(expr, Seq):
        for sub in expr.exprs:
            check_expr(sub, strict_valuable)
        return
    if isinstance(expr, UnitExpr):
        check_unit(expr, strict_valuable)
        return
    if isinstance(expr, CompoundExpr):
        check_compound(expr, strict_valuable)
        return
    if isinstance(expr, InvokeExpr):
        check_invoke(expr, strict_valuable)
        return
    raise CheckError(f"unknown expression form: {expr!r}")


def check_unit(expr: UnitExpr, strict_valuable: bool = True) -> None:
    """Figure 10, the ``unit`` rule.

    Premises: imports and defined names are jointly distinct; exports
    are distinct and drawn from the defined names; every definition
    expression is valuable (unless relaxed); subexpressions check.
    """
    with _obs_span("check.unit", _span_fields(
            expr, imports=len(expr.imports), exports=len(expr.exports),
            defns=len(expr.defns))):
        budget = _limits.current()
        if budget is not None:
            budget.check_deadline(expr.loc)
        # Checking is a pure function of the unit's structure, so a
        # structurally identical unit that already passed need not be
        # re-walked.  The span above still fires: event counts are the
        # same with caching on or off.  Failures are never recorded.
        if _cache.checked_ok(expr, strict_valuable):
            return
        _require_distinct(expr.imports + expr.defined,
                          "unit import/definition", expr)
        _require_distinct(expr.exports, "unit export", expr)
        defined = set(expr.defined)
        for name in expr.exports:
            if name not in defined:
                raise CheckError(
                    f"unit: exported variable '{name}' is not defined",
                    expr.loc)
        unstable = frozenset(expr.imports) | frozenset(expr.defined)
        for name, rhs in expr.defns:
            if strict_valuable and not is_valuable(rhs, unstable):
                raise CheckError(
                    f"unit: definition of '{name}' is not valuable "
                    f"(it may diverge, have effects, or prematurely "
                    f"reference a unit variable)", expr.loc)
            check_expr(rhs, strict_valuable)
        check_expr(expr.init, strict_valuable)
        _cache.record_checked(expr, strict_valuable)


def check_compound(expr: CompoundExpr, strict_valuable: bool = True) -> None:
    """Figure 10, the ``compound`` rule.

    Premises: the compound's imports and the two provides sets are
    jointly distinct; each with set is a subset of the imports plus the
    *other* clause's provides; the exports are a subset of the union of
    the provides sets; constituent expressions check.
    """
    xi = expr.imports
    xp1 = expr.first.provides
    xp2 = expr.second.provides
    with _obs_span("check.compound", _span_fields(
            expr, imports=len(xi), exports=len(expr.exports),
            provides=len(xp1) + len(xp2))):
        budget = _limits.current()
        if budget is not None:
            budget.check_deadline(expr.loc)
        _check_compound_premises(expr, strict_valuable)


def _check_compound_premises(expr: CompoundExpr,
                             strict_valuable: bool) -> None:
    xi = expr.imports
    xp1 = expr.first.provides
    xp2 = expr.second.provides
    _require_distinct(xi + xp1 + xp2, "compound import/provides", expr)
    _require_distinct(expr.first.withs, "compound with (first)", expr)
    _require_distinct(expr.second.withs, "compound with (second)", expr)
    _require_distinct(expr.exports, "compound export", expr)
    allowed_w1 = set(xi) | set(xp2)
    for name in expr.first.withs:
        if name not in allowed_w1:
            raise CheckError(
                f"compound: with-variable '{name}' of the first "
                f"constituent is neither imported nor provided by the "
                f"second constituent", expr.loc)
    allowed_w2 = set(xi) | set(xp1)
    for name in expr.second.withs:
        if name not in allowed_w2:
            raise CheckError(
                f"compound: with-variable '{name}' of the second "
                f"constituent is neither imported nor provided by the "
                f"first constituent", expr.loc)
    providable = set(xp1) | set(xp2)
    for name in expr.exports:
        if name not in providable:
            raise CheckError(
                f"compound: exported variable '{name}' is not provided "
                f"by either constituent", expr.loc)
    check_expr(expr.first.expr, strict_valuable)
    check_expr(expr.second.expr, strict_valuable)


def check_invoke(expr: InvokeExpr, strict_valuable: bool = True) -> None:
    """Figure 10, the ``invoke`` rule: link names distinct, parts check."""
    with _obs_span("check.invoke",
                   _span_fields(expr, links=len(expr.links))):
        _require_distinct(tuple(name for name, _ in expr.links),
                          "invoke link", expr)
        check_expr(expr.expr, strict_valuable)
        for _, rhs in expr.links:
            check_expr(rhs, strict_valuable)


def check_program(expr: Expr, strict_valuable: bool = True) -> Expr:
    """Check a whole program and return it (for pipeline-style use)."""
    check_expr(expr, strict_valuable)
    return expr
