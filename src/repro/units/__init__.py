"""UNITd: the dynamically typed unit calculus of Section 4.1.

* :mod:`repro.units.ast` — the ``unit`` / ``compound`` / ``invoke`` forms,
* :mod:`repro.units.check` — Figure 10 context-sensitive checks,
* :mod:`repro.units.valuable` — the Harper–Stone valuability restriction,
* :mod:`repro.units.reduce` — Figure 11 reduction rules,
* :mod:`repro.units.compile` — the Figure 12 compilation to closures over
  import/export cells (Section 4.1.6).
"""

from repro.units.ast import UnitExpr, CompoundExpr, InvokeExpr

__all__ = ["UnitExpr", "CompoundExpr", "InvokeExpr"]
