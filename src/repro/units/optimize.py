"""Intra-unit (and, after merging, inter-unit) optimization.

Section 4.2.4: "the restrictions implied by a unit's interface allow
inter-procedural optimizations within the unit (such as inlining,
specialization, and dead-code elimination).  Furthermore, since a
compound unit is equivalent to a simple unit that merges its
constituent units, intra-unit optimization techniques naturally extend
to inter-unit optimizations when a compound expression has known
constituent units."

This module implements the three optimizations the paper names, scoped
exactly by the interface:

* **constant folding** — applications of pure primitives to literal
  arguments are evaluated at compile time,
* **inlining** — a definition bound to a literal (or to another
  definition that is never assigned) is substituted at its use sites;
  exported definitions keep their bindings (the interface is the
  optimization boundary),
* **dead-code elimination** — non-exported definitions that no live
  definition or the initialization expression references are removed.

:func:`optimize_unit` optimizes one unit; :func:`optimize_expr` walks
a whole program; composing with
:func:`repro.units.reduce.merge_compound` gives the paper's inter-unit
optimization (see the tests and the ablation bench).
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Expr,
    If,
    Lambda,
    Let,
    Letrec,
    Lit,
    Seq,
    SetBang,
    Var,
    seq_of,
)
from repro.lang.errors import LangError
from repro.lang.prims import OutputPort, make_global_env
from repro.lang.subst import free_vars
from repro.lang.values import Primitive
from repro.units.ast import (
    CompoundExpr,
    InvokeExpr,
    LinkClause,
    UnitExpr,
    unit_children,
)

#: Primitives safe to evaluate at compile time on literal arguments.
FOLDABLE_PRIMS = frozenset({
    "+", "-", "*", "modulo", "quotient", "min", "max", "abs",
    "add1", "sub1", "=", "<", ">", "<=", ">=", "zero?", "number?",
    "not", "boolean?", "string?", "string-append", "string-length",
    "string=?", "substring", "number->string",
})

_PRIM_TABLE: dict[str, Primitive] = {}


def _prims() -> dict[str, Primitive]:
    if not _PRIM_TABLE:
        env = make_global_env(OutputPort())
        for name, cell in env.frame.items():
            value = cell.value
            if isinstance(value, Primitive):
                _PRIM_TABLE[name] = value
    return _PRIM_TABLE


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Lit) and isinstance(
        expr.value, (int, float, str, bool, type(None)))


def fold_constants(expr: Expr, bound: frozenset[str]) -> Expr:
    """Bottom-up constant folding of pure primitive applications.

    ``bound`` tracks locally bound names: a shadowed primitive name is
    not foldable.
    """
    if isinstance(expr, (Lit, Var)):
        return expr
    if isinstance(expr, Lambda):
        return Lambda(expr.params,
                      fold_constants(expr.body, bound | set(expr.params)),
                      expr.loc)
    if isinstance(expr, App):
        fn = fold_constants(expr.fn, bound)
        args = tuple(fold_constants(a, bound) for a in expr.args)
        if isinstance(fn, Var) and fn.name in FOLDABLE_PRIMS \
                and fn.name not in bound and all(_is_literal(a)
                                                 for a in args):
            prim = _prims()[fn.name]
            try:
                value = prim.fn(*(a.value for a in args))  # type: ignore
            except LangError:
                # Folding must not turn a run-time error into silence;
                # leave the application for run time.
                return App(fn, args, expr.loc)
            if isinstance(value, (int, float, str, bool, type(None))):
                return Lit(value, expr.loc)
        return App(fn, args, expr.loc)
    if isinstance(expr, If):
        test = fold_constants(expr.test, bound)
        then = fold_constants(expr.then, bound)
        orelse = fold_constants(expr.orelse, bound)
        if _is_literal(test):
            return then if test.value is not False else orelse
        return If(test, then, orelse, expr.loc)
    if isinstance(expr, Let):
        new_bindings = tuple((n, fold_constants(e, bound))
                             for n, e in expr.bindings)
        inner = bound | {n for n, _ in expr.bindings}
        return Let(new_bindings, fold_constants(expr.body, inner), expr.loc)
    if isinstance(expr, Letrec):
        inner = bound | {n for n, _ in expr.bindings}
        new_bindings = tuple((n, fold_constants(e, inner))
                             for n, e in expr.bindings)
        return Letrec(new_bindings, fold_constants(expr.body, inner),
                      expr.loc)
    if isinstance(expr, SetBang):
        return SetBang(expr.name, fold_constants(expr.expr, bound),
                       expr.loc)
    if isinstance(expr, Seq):
        return Seq(tuple(fold_constants(e, bound) for e in expr.exprs),
                   expr.loc)
    if isinstance(expr, UnitExpr):
        return optimize_unit(expr)
    if isinstance(expr, CompoundExpr):
        return CompoundExpr(
            expr.imports, expr.exports,
            LinkClause(fold_constants(expr.first.expr, bound),
                       expr.first.withs, expr.first.provides),
            LinkClause(fold_constants(expr.second.expr, bound),
                       expr.second.withs, expr.second.provides),
            expr.loc)
    if isinstance(expr, InvokeExpr):
        return InvokeExpr(
            fold_constants(expr.expr, bound),
            tuple((n, fold_constants(e, bound)) for n, e in expr.links),
            expr.loc)
    raise TypeError(f"fold_constants: unknown expression {expr!r}")


def _assigned_names(expr: Expr) -> frozenset[str]:
    """Names targeted by set! anywhere in an expression."""
    out: set[str] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, SetBang):
            out.add(e.name)
            walk(e.expr)
            return
        try:
            kids = unit_children(e)
        except TypeError:
            return
        for kid in kids:
            walk(kid)

    walk(expr)
    return frozenset(out)


def optimize_unit(unit: UnitExpr, rounds: int = 4) -> UnitExpr:
    """Optimize one unit: fold, inline literals, drop dead definitions.

    The unit's interface is the boundary: imports are opaque, exports
    are roots.  The result has the same interface and — because only
    valuable (effect-free) definitions are touched — the same
    behaviour; the differential tests check that claim.
    """
    from repro.units.cache import cached_optimize

    def compute() -> UnitExpr:
        current = unit
        for _ in range(rounds):
            step = _optimize_unit_once(current)
            if step == current:
                return step
            current = step
        return current

    # Deterministic, event-free work: content-addressing it under the
    # link store cannot perturb trace-event counts.
    return cached_optimize(unit, rounds, compute)


def _optimize_unit_once(unit: UnitExpr) -> UnitExpr:
    assigned = _assigned_names(
        Seq(tuple(e for _, e in unit.defns) + (unit.init,)))

    # 1. Constant-fold every right-hand side and the init.
    bound = frozenset(unit.imports) | frozenset(unit.defined)
    defns = [(name, fold_constants(rhs, bound))
             for name, rhs in unit.defns]
    init = fold_constants(unit.init, bound)

    # 2. Inline definitions bound to literals (and never assigned).
    inline: dict[str, Expr] = {
        name: rhs for name, rhs in defns
        if _is_literal(rhs) and name not in assigned}
    if inline:
        from repro.lang.subst import substitute

        defns = [(name, substitute(rhs, {k: v for k, v in inline.items()
                                         if k != name}))
                 for name, rhs in defns]
        init = substitute(init, inline)

    # 3. Dead-definition elimination: exported names are roots; a
    #    definition is live if reachable from a root or the init.
    defined = set(unit.defined)
    refs: dict[str, frozenset[str]] = {
        name: free_vars(rhs) & defined
        for name, rhs in defns}
    live: set[str] = set(unit.exports) | set(assigned)
    frontier = list(live) + sorted(free_vars(init) & defined)
    live.update(frontier)
    while frontier:
        name = frontier.pop()
        for dep in refs.get(name, frozenset()):
            if dep not in live:
                live.add(dep)
                frontier.append(dep)
    new_defns = tuple((name, rhs) for name, rhs in defns if name in live)

    return UnitExpr(unit.imports, unit.exports, new_defns, init, unit.loc)


def optimize_expr(expr: Expr) -> Expr:
    """Optimize every unit in a program (plus top-level folding)."""
    return fold_constants(expr, frozenset())


def optimization_report(before: UnitExpr, after: UnitExpr) -> str:
    """A one-line summary of what optimization removed."""
    removed = [name for name in before.defined
               if name not in set(after.defined)]
    return (f"definitions: {len(before.defns)} -> {len(after.defns)}"
            + (f" (removed: {', '.join(removed)})" if removed else ""))
