"""Content-addressed caches for compiled, checked, and linked units.

Units are syntax, and structurally identical syntax compiles, checks,
and links identically — so the Figure 12 compiler, the Figure 10
checker, the Figure 11 compound merge, and the dynamic-linking archive
can reuse results keyed by the stable
:func:`repro.lang.terms.term_key` digest.  Six stores live in a
:class:`CacheStore`:

* the **compile cache** — ``term_key(unit-form) -> compiled core
  expression`` (compiled code is closed over its generated names, so a
  cached body is reusable in any context, exactly the code sharing the
  paper's footnote 8 describes);
* the **check cache** — ``(term_key, strict?) -> passed`` for
  successful :func:`repro.units.check.check_unit` runs (failures are
  never cached: the error message and trace event must re-fire);
* the **link cache** — resolved link subgraphs.  The paper's compound
  link graphs are DAG-shaped (Section 3.2–3.3), so a compound whose
  constituent digests are unchanged re-links to a structurally
  identical merged unit; :func:`cached_link` keys the merge of
  :func:`repro.units.reduce.merge_compound` on the ``tk1`` digests of
  the two constituent units plus the link-graph shape (the compound's
  imports/exports and each clause's with/provides lists — flat
  signature names, never qualified paths), and :func:`cached_optimize`
  keys the Section 4.2.4 optimizer's output on the merged unit's own
  digest.  Both the static linker and the rewriting machine consult
  the same store, so a subgraph resolved once is shared instead of
  re-walked;
* the **parse cache** — ``sha256(source) -> unit syntax`` for archive
  retrievals, so repeatedly loading the same serialized unit parses
  once;
* the **codegen (pycode) cache** and the **flatten memo** — see their
  sections below.

Scoping: the caches are **inactive by default** and enabled per scope.
:func:`unit_cache_scope` creates a *fresh* :class:`CacheStore` for the
dynamic extent of the block — the CLI wraps each invocation in one
(one invocation behaves like one process), benches and tests open
their own.  :func:`cache_store_scope` instead installs an *existing*
store, which is how ``repro serve`` shares one long-lived,
concurrency-safe store across requests: the daemon constructs a
``CacheStore(thread_safe=True, ttl_s=...)`` once and every worker
thread enters ``cache_store_scope(store)`` for its request.  Scoping
is :mod:`contextvars`-based, so concurrent requests each see exactly
the store their scope installed and a library caller can never observe
another caller's cache state.  ``--no-term-cache`` (the
:mod:`repro.lang.terms` switch) also disables them.

Concurrency: a ``thread_safe`` store guards each in-memory LRU with a
lock and the disk tiers with striped per-digest locks.  No lock is
ever held across a ``compute()`` callback, so two racing misses on the
same key may both compute (a benign stampede — the values are
structurally identical and last-put wins); what the locks rule out is
*torn state*: a reader never observes a half-updated LRU, a
half-written disk entry (writes go to a unique temp file and
``os.replace`` into place), or a concurrent unlink-on-corrupt.

Eviction and invalidation: every store is size-bounded (LRU); a
``ttl_s`` additionally expires entries by age at lookup time (expiry
emits ``cache.evict`` with ``reason: "ttl"``).
:meth:`CacheStore.invalidate` removes every entry derived from a given
``tk1`` digest — memory entries whose key embeds the digest, link-tier
merges recorded as depending on it, and the digest's disk files — so a
serving process can drop one unit's results without flushing the
world.

Every lookup emits exactly one ``cache.hit`` or ``cache.miss`` event
(guarded, so nothing is built when observability is off) carrying the
cache's name; LRU evictions emit ``cache.evict``.  The on-disk tier
(for compiled units and merged link results, enabled by
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable)
stores pretty-printed terms under a directory versioned by the digest
schema (``v1-tk1/compile/`` and ``v1-tk1/link/``), so a schema change
strands old entries instead of misreading them.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from pathlib import Path
from typing import Callable, Iterator

from repro.lang import terms as _terms
from repro.lang.ast import Expr
from repro.obs import current as _obs_current
from repro.serve import chaos as _chaos

_MISS = object()

#: Default LRU capacities per store (scaled by ``CacheStore(scale=)``).
_SIZES = {"compile": 1024, "check": 4096, "link": 1024,
          "dynlink": 256, "pycode": 256, "flatten": 512}

#: How many stripes the per-digest disk locks are spread over.
_DIGEST_STRIPES = 64


class TermCache:
    """A bounded LRU map from digests to results.

    Pure storage: event emission happens in the ``cached_*`` helpers
    below (one event per *logical* lookup, even when a memory miss
    falls through to the disk tier), except eviction — size-bound LRU
    drops and TTL expiries — which only this class can see.

    With a ``lock`` the table is safe for concurrent get/put (the
    serve store's configuration); with a ``ttl_s`` entries expire by
    age at lookup time, so a long-lived store sheds stale results even
    for keys hot enough to survive the LRU.
    """

    def __init__(self, name: str, maxsize: int, *,
                 lock: "threading.Lock | None" = None,
                 ttl_s: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.name = name
        self.maxsize = maxsize
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = lock
        self._table: "OrderedDict[object, object]" = OrderedDict()
        self._stamps: dict[object, float] | None = \
            {} if ttl_s is not None else None

    def get(self, key: object) -> object:
        if self._lock is None:
            found, expired = self._get(key)
        else:
            with self._lock:
                found, expired = self._get(key)
        if expired:
            col = _obs_current()
            if col is not None:
                col.emit("cache.evict", {"cache": self.name,
                                         "reason": "ttl"})
                col.gauge(f"cache.occupancy.{self.name}", len(self._table))
        return found

    def _get(self, key: object) -> tuple[object, bool]:
        found = self._table.get(key, _MISS)
        if found is _MISS:
            return _MISS, False
        if self._stamps is not None:
            stamp = self._stamps.get(key, 0.0)
            if self._clock() - stamp > self.ttl_s:
                del self._table[key]
                self._stamps.pop(key, None)
                return _MISS, True
        self._table.move_to_end(key)
        return found, False

    def put(self, key: object, value: object) -> None:
        if self._lock is None:
            evicted = self._put(key, value)
        else:
            with self._lock:
                evicted = self._put(key, value)
        col = _obs_current()
        if col is not None:
            if evicted:
                col.emit("cache.evict", {"cache": self.name})
            col.gauge(f"cache.occupancy.{self.name}", len(self._table))

    def _put(self, key: object, value: object) -> bool:
        self._table[key] = value
        self._table.move_to_end(key)
        if self._stamps is not None:
            self._stamps[key] = self._clock()
        if len(self._table) > self.maxsize:
            old, _ = self._table.popitem(last=False)
            if self._stamps is not None:
                self._stamps.pop(old, None)
            return True
        return False

    def delete(self, key: object) -> int:
        """Drop one entry; returns how many entries were removed."""
        if self._lock is None:
            return self._delete(key)
        with self._lock:
            return self._delete(key)

    def _delete(self, key: object) -> int:
        if key in self._table:
            del self._table[key]
            if self._stamps is not None:
                self._stamps.pop(key, None)
            return 1
        return 0

    def matching(self, digest: str) -> list[object]:
        """Keys that embed ``digest`` (directly or inside a tuple)."""
        if self._lock is None:
            keys = list(self._table)
        else:
            with self._lock:
                keys = list(self._table)
        return [key for key in keys if _key_contains(key, digest)]

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        if self._lock is None:
            self._clear()
        else:
            with self._lock:
                self._clear()

    def _clear(self) -> None:
        self._table.clear()
        if self._stamps is not None:
            self._stamps.clear()


def _key_contains(key: object, digest: str) -> bool:
    if key == digest:
        return True
    if isinstance(key, tuple):
        return any(_key_contains(part, digest) for part in key)
    return False


class CacheStore:
    """One complete set of content-addressed stores plus disk tiers.

    The unit of cache *scoping*: :func:`unit_cache_scope` creates a
    private one per invocation; ``repro serve`` creates one
    ``thread_safe`` instance at startup and shares it across every
    request via :func:`cache_store_scope`.  In multi-process serve
    mode each worker process instead bootstraps its own store with
    :meth:`for_worker`, and sibling workers share warm state *only*
    through the disk tiers: writes are atomic (per-process temp file +
    ``os.replace``) and keys are content-addressed ``tk1`` digests, so
    concurrent writers of the same key race to install identical
    bytes — last-replace-wins is correct by construction, with no
    cross-process locking.

    ``thread_safe`` arms a lock per in-memory LRU and
    :data:`_DIGEST_STRIPES` striped locks for disk-tier reads, writes,
    and unlink-on-corrupt.  ``ttl_s`` expires memory entries by age;
    ``scale`` multiplies the default LRU capacities.  ``clock`` is
    injectable so TTL tests need not sleep.
    """

    def __init__(self, disk_dir: str | Path | None = None, *,
                 thread_safe: bool = False, ttl_s: float | None = None,
                 scale: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.thread_safe = thread_safe
        self.ttl_s = ttl_s

        def make(name: str) -> TermCache:
            return TermCache(
                name, max(1, int(_SIZES[name] * scale)),
                lock=threading.Lock() if thread_safe else None,
                ttl_s=ttl_s, clock=clock)

        self.compile = make("compile")
        self.check = make("check")
        self.link = make("link")
        self.parse = make("dynlink")
        self.pycode = make("pycode")
        self.flatten = make("flatten")
        self.caches = (self.compile, self.check, self.link, self.parse,
                       self.pycode, self.flatten)
        self._stripes = (tuple(threading.Lock()
                               for _ in range(_DIGEST_STRIPES))
                         if thread_safe else None)
        #: link-merge key -> the two constituent ``tk1`` digests, so
        #: :meth:`invalidate` can find merges whose opaque key does not
        #: itself embed the digest.
        self._link_deps: dict[object, tuple[str, str]] = {}
        self._deps_lock = threading.Lock() if thread_safe else None

    @classmethod
    def for_worker(cls, disk_dir: str | Path | None = None, *,
                   ttl_s: float | None = None,
                   scale: float = 1.0) -> "CacheStore":
        """Bootstrap the per-process store of one serve worker.

        Workers execute one request at a time, so the store is built
        *without* per-LRU locks (``thread_safe=False`` — uncontended
        locks would only add overhead).  Pointing every sibling at the
        same ``disk_dir`` is what makes warm state cross-process: a
        compile/link/pycode artifact one worker writes is a disk hit
        for the next, under the atomic-write discipline described in
        the class docstring.
        """
        return cls(disk_dir, thread_safe=False, ttl_s=ttl_s,
                   scale=scale)

    # -- maintenance ----------------------------------------------------

    def clear(self) -> None:
        """Empty every in-memory store (the disk tier is untouched)."""
        for cache in self.caches:
            cache.clear()
        if self._deps_lock is None:
            self._link_deps.clear()
        else:
            with self._deps_lock:
                self._link_deps.clear()

    def occupancy(self) -> dict[str, int]:
        """Entries resident per store, for stats endpoints."""
        return {cache.name: len(cache) for cache in self.caches}

    def invalidate(self, digest: str) -> int:
        """Drop every entry derived from one ``tk1`` digest.

        Covers memory entries whose key embeds the digest (compile,
        check, pycode, flatten, and the link tier's ``("opt", ...)``
        optimizer entries), link-tier merges recorded as *depending*
        on the digest, and the digest's own disk files.  Returns how
        many entries were removed.
        """
        removed = 0
        for cache in self.caches:
            for key in cache.matching(digest):
                removed += cache.delete(key)
        deps_lock = self._deps_lock or nullcontext()
        with deps_lock:
            stale = [key for key, (k1, k2) in self._link_deps.items()
                     if digest in (k1, k2)]
            for key in stale:
                self._link_deps.pop(key, None)
        for key in stale:
            removed += self.link.delete(key)
        if self.disk_dir is not None:
            for kind, suffix in (("compile", ".scm"), ("link", ".scm"),
                                 ("pycode", ".py")):
                path = self._disk_path(kind, digest, suffix)
                with self._digest_lock(kind, digest):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def record_link_deps(self, key: object, first: Expr,
                         second: Expr) -> None:
        """Remember a merge's constituent digests for invalidation.

        ``term_key`` is memoized on hash-consed nodes, so re-digesting
        here is a field read, not a re-hash.
        """
        k1 = _terms.try_term_key(first)
        k2 = _terms.try_term_key(second)
        if k1 is None or k2 is None:
            return
        deps_lock = self._deps_lock or nullcontext()
        with deps_lock:
            self._link_deps[key] = (k1, k2)
            if len(self._link_deps) > 2 * self.link.maxsize:
                # Prune deps whose merge the LRU already evicted.
                live = self._link_deps
                self._link_deps = {k: v for k, v in live.items()
                                   if k in self.link._table}

    # -- the disk tiers -------------------------------------------------

    def _digest_lock(self, kind: str, key: object):
        if self._stripes is None:
            return nullcontext()
        return self._stripes[hash((kind, key)) % _DIGEST_STRIPES]

    def _disk_path(self, kind: str, key: str,
                   suffix: str = ".scm") -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"v1-{_terms.SCHEMA}" / kind \
            / f"{key}{suffix}"

    def disk_read_expr(self, kind: str, key: str) -> Expr | None:
        """Read + reparse a disk entry; corrupt entries are unlinked
        (under the digest lock) and reported as a miss."""
        path = self._disk_path(kind, key)
        if path is None:
            return None
        from repro.lang.parser import parse_program

        with self._digest_lock(kind, key):
            try:
                if _chaos._armed:
                    _chaos.cache_io(f"{kind}.read")
                text = path.read_text(encoding="utf-8")
            except OSError:
                return None
            try:
                return parse_program(text, origin=str(path))
            except Exception:
                # A corrupt or stale entry is a miss, not an error;
                # drop it so the recomputed result can take its slot.
                try:
                    path.unlink()
                except OSError:
                    pass
                return None

    def disk_read_unit(self, key: str) -> Expr | None:
        """Read a link-tier entry; anything but a single unit is
        corrupt."""
        from repro.units.ast import UnitExpr

        loaded = self.disk_read_expr("link", key)
        if loaded is None or isinstance(loaded, UnitExpr):
            return loaded
        path = self._disk_path("link", key)
        with self._digest_lock("link", key):
            try:
                path.unlink()
            except OSError:
                pass
        return None

    def disk_write_text(self, kind: str, key: str, text: str,
                        suffix: str = ".scm") -> None:
        """Atomically publish one disk entry (temp file + replace).

        Concurrent writers of the same digest write identical content
        (the keys are content addresses), so last-replace-wins is
        correct; a reader racing the replace sees either the old
        complete entry or the new complete entry, never a torn one.
        """
        path = self._disk_path(kind, key, suffix)
        if path is None:
            return
        tmp: Path | None = None
        with self._digest_lock(kind, key):
            try:
                if _chaos._armed:
                    _chaos.cache_io(f"{kind}.write")
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(
                    f"{path.name}.{os.getpid()}."
                    f"{threading.get_ident()}.tmp")
                tmp.write_text(text, encoding="utf-8")
                os.replace(tmp, path)
            except OSError:
                # A read-only or failing cache dir degrades to
                # memory-only; never leave a temp file behind.
                if tmp is not None:
                    try:
                        tmp.unlink()
                    except OSError:
                        pass

    def disk_read_pycode(self, key: str):
        """Load and compile a pycode disk entry, or ``None``.

        An entry that fails to ``compile()`` — or compiles but does
        not define ``_main`` (a truncation at a line boundary parses
        fine) — is corrupt: unlink it (under the digest lock) and
        report a miss.
        """
        path = self._disk_path("pycode", key, suffix=".py")
        if path is None:
            return None
        with self._digest_lock("pycode", key):
            try:
                if _chaos._armed:
                    _chaos.cache_io("pycode.read")
                source = path.read_text(encoding="utf-8")
            except OSError:
                return None
            try:
                code = _pycode_compile(source)
                if "_main" not in code.co_names:
                    raise ValueError("no _main in cached module")
                return code
            except (SyntaxError, ValueError):
                try:
                    path.unlink()
                except OSError:
                    pass
                return None


# ---------------------------------------------------------------------------
# Scoping
# ---------------------------------------------------------------------------

_STORE: ContextVar[CacheStore | None] = ContextVar(
    "repro_unit_cache_store", default=None)

#: Count of entered cache scopes process-wide; ``current_store()``
#: reads this plain global before touching the contextvar, so the
#: common case — no scope anywhere — costs one integer test.
_scopes_open = 0


def current_store() -> CacheStore | None:
    """The store in scope (whether or not the term layer is enabled)."""
    if not _scopes_open:
        return None
    return _STORE.get()


def _active_store() -> CacheStore | None:
    """The store in scope, or ``None`` when caching is off entirely."""
    if not _scopes_open or not _terms._enabled:
        return None
    return _STORE.get()


def unit_caches_active() -> bool:
    """Are the content-addressed caches consulted right now?"""
    return _active_store() is not None


def clear_unit_caches() -> None:
    """Empty the scoped store's memory tiers (disk is untouched)."""
    store = current_store()
    if store is not None:
        store.clear()


@contextmanager
def cache_store_scope(store: CacheStore) -> Iterator[CacheStore]:
    """Make ``store`` the consulted store for the dynamic extent.

    This is the sharing primitive: a long-lived process (``repro
    serve``) constructs one concurrency-safe store and each worker
    thread wraps its request in this scope.  Scoping is contextvar-
    based, so it must be (re-)entered inside the worker — executor
    threads do not inherit the submitting context.  Scopes nest; on
    exit the previous store (possibly none) is restored exactly.
    """
    global _scopes_open
    token = _STORE.set(store)
    _scopes_open += 1
    try:
        yield store
    finally:
        _scopes_open -= 1
        _STORE.reset(token)


@contextmanager
def unit_cache_scope(disk_dir: str | Path | None = None
                     ) -> Iterator[CacheStore]:
    """Activate a fresh private store for the dynamic extent.

    Entering installs empty stores (and optionally a disk directory);
    exiting restores whatever was active before, so scopes nest and a
    library caller can never observe another caller's cache state.
    """
    with cache_store_scope(CacheStore(disk_dir)) as store:
        yield store


class _ScopedCacheView:
    """Back-compat module-global view of one named cache.

    ``cache.LINK_CACHE`` and friends predate :class:`CacheStore`;
    existing callers (tests, diagnostics) only size and clear them, so
    the view resolves against the *currently scoped* store on every
    use and reads as empty when no scope is open.
    """

    def __init__(self, attr: str):
        self._attr = attr

    def _cache(self) -> TermCache | None:
        store = current_store()
        return getattr(store, self._attr) if store is not None else None

    def __len__(self) -> int:
        cache = self._cache()
        return len(cache) if cache is not None else 0

    def clear(self) -> None:
        cache = self._cache()
        if cache is not None:
            cache.clear()

    def get(self, key: object) -> object:
        cache = self._cache()
        return cache.get(key) if cache is not None else _MISS

    def put(self, key: object, value: object) -> None:
        cache = self._cache()
        if cache is not None:
            cache.put(key, value)


COMPILE_CACHE = _ScopedCacheView("compile")
CHECK_CACHE = _ScopedCacheView("check")
LINK_CACHE = _ScopedCacheView("link")
PARSE_CACHE = _ScopedCacheView("parse")
PYCODE_CACHE = _ScopedCacheView("pycode")
FLATTEN_CACHE = _ScopedCacheView("flatten")


def _emit_hit(name: str, tier: str, t_start: float | None = None) -> None:
    col = _obs_current()
    if col is not None:
        col.emit("cache.hit", {"cache": name, "tier": tier})
        if t_start is not None:
            # Hit service time: digesting the term plus the lookup
            # (and, for a disk hit, reading and reparsing the entry).
            col.observe(f"cache.hit.{name}",
                        time.perf_counter() - t_start)


def _emit_miss(name: str, t_start: float | None = None) -> None:
    col = _obs_current()
    if col is not None:
        col.emit("cache.miss", {"cache": name})
        if t_start is not None:
            # Miss service time: the overhead of *concluding* the miss
            # (key + lookup), not the recomputation that follows — the
            # stage spans already own that.
            col.observe(f"cache.miss.{name}",
                        time.perf_counter() - t_start)


# ---------------------------------------------------------------------------
# The compile cache (memory + optional disk tier)
# ---------------------------------------------------------------------------


def cached_compile(expr: Expr, compute: Callable[[], Expr]) -> Expr:
    """Compile through the content-addressed cache.

    Hits return the stored node itself, so structurally identical
    units across a program share one compiled body (the paper's
    footnote-8 code sharing, for free).  Keying digests only the
    *input* unit — never the (much larger) compiled output.
    """
    store = _active_store()
    if store is None:
        return compute()
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return compute()
    found = store.compile.get(key)
    if found is not _MISS:
        _emit_hit("compile", "memory", t_start)
        return found  # type: ignore[return-value]
    loaded = store.disk_read_expr("compile", key)
    if loaded is not None:
        _emit_hit("compile", "disk", t_start)
        store.compile.put(key, loaded)
        return loaded
    _emit_miss("compile", t_start)
    out = compute()
    store.compile.put(key, out)
    from repro.lang.pretty import show

    store.disk_write_text("compile", key, show(out) + "\n")
    return out


# ---------------------------------------------------------------------------
# The link cache (memory + optional disk tier)
# ---------------------------------------------------------------------------
#
# Linking is content-addressed exactly like compilation: the merged
# unit a compound reduces to is a pure function of its constituents'
# structure and the link-graph shape, so a compound whose constituent
# digests are unchanged short-circuits to the stored merge.  Keys are
# built from flat signature names (a clause's with/provides lists),
# never from qualified paths — renaming a box or moving a unit between
# files cannot invalidate an entry whose structure is unchanged.
#
# Failure discipline matches the other stores: clause violations are
# raised by the caller *before* the lookup, and a merge aborted by a
# :class:`repro.limits.BudgetExceeded` (deadline or substitution
# budget) propagates out of ``compute`` before anything is stored, so
# failed or exhausted links are never cached.


def link_key(compound, first: Expr, second: Expr) -> str | None:
    """The content key of one compound-link step (hex), or ``None``.

    Digests the two constituent units' ``tk1`` keys plus the link-graph
    shape: the compound's imports/exports and each clause's
    with/provides name lists.  ``None`` when either constituent embeds
    run-time data (machine states are never cached).
    """
    import hashlib

    k1 = _terms.try_term_key(first)
    if k1 is None:
        return None
    k2 = _terms.try_term_key(second)
    if k2 is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    h.update(_terms.SCHEMA.encode("ascii"))
    h.update(b"merge")
    for part in (k1, k2):
        h.update(part.encode("ascii"))
    for names in (compound.imports, compound.exports,
                  compound.first.withs, compound.first.provides,
                  compound.second.withs, compound.second.provides):
        h.update(b"/")
        for name in names:
            data = name.encode("utf-8")
            h.update(str(len(data)).encode("ascii"))
            h.update(b":")
            h.update(data)
    return h.hexdigest()


def cached_link(compound, first: Expr, second: Expr,
                compute: Callable[[], Expr]) -> Expr:
    """Merge a compound's constituents through the link cache.

    Hits return the stored merged unit itself, so an already-resolved
    subgraph is shared instead of re-walked — the static linker and
    the rewriting machine both come through here, and a subtree either
    one resolved primes the other.  Deadline checks happen in the
    caller before the lookup, so budget-governed runs poll the clock
    on the fast path too.
    """
    store = _active_store()
    if store is None:
        return compute()
    t_start = time.perf_counter()
    key = link_key(compound, first, second)
    if key is None:
        return compute()
    found = store.link.get(key)
    if found is not _MISS:
        _emit_hit("link", "memory", t_start)
        return found  # type: ignore[return-value]
    loaded = store.disk_read_unit(key)
    if loaded is not None:
        _emit_hit("link", "disk", t_start)
        store.link.put(key, loaded)
        store.record_link_deps(key, first, second)
        return loaded
    _emit_miss("link", t_start)
    out = compute()
    store.link.put(key, out)
    store.record_link_deps(key, first, second)
    from repro.lang.pretty import show

    store.disk_write_text("link", key, show(out) + "\n")
    return out


def cached_optimize(unit: Expr, rounds: int,
                    compute: Callable[[], Expr]) -> Expr:
    """Optimize a unit through the link cache (memory tier only).

    The Section 4.2.4 optimizer runs as the second half of the link
    stage on the merged unit, is deterministic, and emits no events —
    so its output is content-addressed under the same ``link`` store,
    keyed on the input unit's digest and the round count.  Exceptions
    (including budget exhaustion mid-substitution) propagate before
    anything is stored.
    """
    store = _active_store()
    if store is None:
        return compute()
    t_start = time.perf_counter()
    key = _terms.try_term_key(unit)
    if key is None:
        return compute()
    found = store.link.get(("opt", key, rounds))
    if found is not _MISS:
        _emit_hit("link", "memory", t_start)
        return found  # type: ignore[return-value]
    _emit_miss("link", t_start)
    out = compute()
    store.link.put(("opt", key, rounds), out)
    return out


# ---------------------------------------------------------------------------
# The check cache (successes only)
# ---------------------------------------------------------------------------


def checked_ok(expr: Expr, strict_valuable: bool) -> bool:
    """Did a structurally identical unit already pass this check?

    Emits the hit/miss event; a ``True`` return means the caller may
    skip re-checking.  Inactive caches answer ``False`` silently.
    """
    store = _active_store()
    if store is None:
        return False
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return False
    if store.check.get((key, strict_valuable)) is not _MISS:
        _emit_hit("check", "memory", t_start)
        return True
    _emit_miss("check", t_start)
    return False


def record_checked(expr: Expr, strict_valuable: bool) -> None:
    """Record that ``expr`` passed checking (no event: not a lookup)."""
    store = _active_store()
    if store is None:
        return
    key = _terms.try_term_key(expr)
    if key is not None:
        store.check.put((key, strict_valuable), True)


# ---------------------------------------------------------------------------
# The archive parse cache
# ---------------------------------------------------------------------------


def cached_parse(source: str, compute: Callable[[], Expr]) -> Expr:
    """Parse archived unit source through the cache.

    Keyed by the full text handed in — callers prepend any context
    (like the parse origin) that the cached syntax must agree with.
    """
    store = _active_store()
    if store is None:
        return compute()
    import hashlib

    t_start = time.perf_counter()
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    found = store.parse.get(key)
    if found is not _MISS:
        _emit_hit("dynlink", "memory", t_start)
        return found  # type: ignore[return-value]
    _emit_miss("dynlink", t_start)
    out = compute()
    store.parse.put(key, out)
    return out


# ---------------------------------------------------------------------------
# The codegen (pycode) cache: memory holds code objects, disk holds
# the generated Python source
# ---------------------------------------------------------------------------


def _pycode_compile(source: str):
    return compile(source, "<pycode>", "exec")


def cached_pycode(expr: Expr, generate: Callable[[], str]):
    """Generate + compile a program's Python module through the cache.

    The memory tier stores the ready code object; the disk tier stores
    the generated source at ``v1-tk1/pycode/<digest>.py`` (codegen is
    deterministic in the program's shape, so equal digests mean equal
    source).  Exceptions from ``generate`` or ``compile`` — including
    budget exhaustion surfacing mid-codegen — propagate before
    anything is stored, so failed compilations are never cached.
    """
    store = _active_store()
    if store is None:
        return _pycode_compile(generate())
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return _pycode_compile(generate())
    found = store.pycode.get(key)
    if found is not _MISS:
        _emit_hit("pycode", "memory", t_start)
        return found
    loaded = store.disk_read_pycode(key)
    if loaded is not None:
        _emit_hit("pycode", "disk", t_start)
        store.pycode.put(key, loaded)
        return loaded
    _emit_miss("pycode", t_start)
    source = generate()
    code = _pycode_compile(source)
    store.pycode.put(key, code)
    store.disk_write_text("pycode", key, source, suffix=".py")
    return code


# ---------------------------------------------------------------------------
# The flatten memo (memory tier only)
# ---------------------------------------------------------------------------
#
# Warm link time is dominated by re-walking the whole program tree even
# when every individual merge hits the link store.  The memo caches the
# *flattened result of an entire compound subtree*, keyed on the
# subtree's digest plus everything `_flatten` consults about its
# context: the unit bindings in scope (clause variables resolve through
# them) and the program's assigned-name set (which gates that
# resolution).  A hit skips the subtree walk entirely; the linker
# replays the recorded `link.static`/`reduce.compound` span kinds and
# stat deltas so trace-event counts and `LinkStats` stay
# cache-invariant (the differential sweeps compare both).  Failed
# merges raise out of the compute path before anything is stored.


def flatten_key(expr: Expr, units_in_scope: dict,
                assigned: frozenset) -> tuple | None:
    """The context-complete memo key for one compound subtree."""
    if not unit_caches_active():
        return None
    key = _terms.try_term_key(expr)
    if key is None:
        return None
    scope_sig = []
    for name in sorted(units_in_scope):
        unit_key = _terms.try_term_key(units_in_scope[name])
        if unit_key is None:
            return None
        scope_sig.append((name, unit_key))
    return (key, tuple(scope_sig), tuple(sorted(assigned)))


def flatten_lookup(key: tuple | None):
    """The stored ``(result, merged, dynamic, replay)`` entry, or
    ``None`` (emitting the hit/miss event either way)."""
    if key is None:
        return None
    store = _active_store()
    if store is None:
        return None
    t_start = time.perf_counter()
    found = store.flatten.get(key)
    if found is not _MISS:
        _emit_hit("flatten", "memory", t_start)
        return found
    _emit_miss("flatten", t_start)
    return None


def flatten_store(key: tuple | None, entry: tuple) -> None:
    store = _active_store()
    if key is not None and store is not None:
        store.flatten.put(key, entry)


def replay_link_events(replay: tuple) -> None:
    """Re-emit the span/event *kinds* a memoized flatten produced.

    Each marker is ``("m", defns)`` for a static merge (a
    ``link.static`` span enclosing the ``reduce.compound`` span, as the
    computed path nests them) or ``("d",)`` for a compound left
    dynamic (a flat ``link.static`` event) — so event counts per kind
    are identical with and without the memo.
    """
    col = _obs_current()
    if col is None:
        return
    for marker in replay:
        if marker[0] == "m":
            with col.span("link.static", {"merged": True, "replay": True}):
                with col.span("reduce.compound", {"defns": marker[1],
                                                  "replay": True}):
                    pass
        else:
            col.emit("link.static", {"merged": False, "replay": True})
