"""Content-addressed caches for compiled, checked, and linked units.

Units are syntax, and structurally identical syntax compiles, checks,
and links identically — so the Figure 12 compiler, the Figure 10
checker, the Figure 11 compound merge, and the dynamic-linking archive
can reuse results keyed by the stable
:func:`repro.lang.terms.term_key` digest.  Four stores live here:

* the **compile cache** — ``term_key(unit-form) -> compiled core
  expression`` (compiled code is closed over its generated names, so a
  cached body is reusable in any context, exactly the code sharing the
  paper's footnote 8 describes);
* the **check cache** — ``(term_key, strict?) -> passed`` for
  successful :func:`repro.units.check.check_unit` runs (failures are
  never cached: the error message and trace event must re-fire);
* the **link cache** — resolved link subgraphs.  The paper's compound
  link graphs are DAG-shaped (Section 3.2–3.3), so a compound whose
  constituent digests are unchanged re-links to a structurally
  identical merged unit; :func:`cached_link` keys the merge of
  :func:`repro.units.reduce.merge_compound` on the ``tk1`` digests of
  the two constituent units plus the link-graph shape (the compound's
  imports/exports and each clause's with/provides lists — flat
  signature names, never qualified paths), and :func:`cached_optimize`
  keys the Section 4.2.4 optimizer's output on the merged unit's own
  digest.  Both the static linker and the rewriting machine consult
  the same store, so a subgraph resolved once is shared instead of
  re-walked;
* the **parse cache** — ``sha256(source) -> unit syntax`` for archive
  retrievals, so repeatedly loading the same serialized unit parses
  once.

Scoping: the caches are **inactive by default** and enabled per scope
with :func:`unit_cache_scope` — the CLI wraps each invocation in a
fresh scope (one invocation behaves like one process), benches and
tests open their own.  This keeps library semantics and trace-event
counts bit-for-bit stable for any caller that did not opt in.
``--no-term-cache`` (the :mod:`repro.lang.terms` switch) also disables
them.

Every lookup emits exactly one ``cache.hit`` or ``cache.miss`` event
(guarded, so nothing is built when observability is off) carrying the
cache's name; LRU evictions emit ``cache.evict``.  The on-disk tier
(for compiled units and merged link results, enabled by
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable)
stores pretty-printed terms under a directory versioned by the digest
schema (``v1-tk1/compile/`` and ``v1-tk1/link/``), so a schema change
strands old entries instead of misreading them.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

from repro.lang import terms as _terms
from repro.lang.ast import Expr
from repro.obs import current as _obs_current

_MISS = object()


class TermCache:
    """A bounded LRU map from digests to results.

    Pure storage: event emission happens in the ``cached_*`` helpers
    below (one event per *logical* lookup, even when a memory miss
    falls through to the disk tier), except eviction, which only this
    class can see.
    """

    def __init__(self, name: str, maxsize: int):
        self.name = name
        self.maxsize = maxsize
        self._table: "OrderedDict[object, object]" = OrderedDict()

    def get(self, key: object) -> object:
        found = self._table.get(key, _MISS)
        if found is not _MISS:
            self._table.move_to_end(key)
        return found

    def put(self, key: object, value: object) -> None:
        self._table[key] = value
        self._table.move_to_end(key)
        evicted = len(self._table) > self.maxsize
        if evicted:
            self._table.popitem(last=False)
        col = _obs_current()
        if col is not None:
            if evicted:
                col.emit("cache.evict", {"cache": self.name})
            col.gauge(f"cache.occupancy.{self.name}", len(self._table))

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()


COMPILE_CACHE = TermCache("compile", maxsize=1024)
CHECK_CACHE = TermCache("check", maxsize=4096)
LINK_CACHE = TermCache("link", maxsize=1024)
PARSE_CACHE = TermCache("dynlink", maxsize=256)
PYCODE_CACHE = TermCache("pycode", maxsize=256)
FLATTEN_CACHE = TermCache("flatten", maxsize=512)

_ALL = (COMPILE_CACHE, CHECK_CACHE, LINK_CACHE, PARSE_CACHE,
        PYCODE_CACHE, FLATTEN_CACHE)

#: Activation flag — see the module docstring.  Off by default.
_active = False

#: Directory of the on-disk compiled-unit tier, or ``None``.
_disk_dir: Path | None = None


def unit_caches_active() -> bool:
    """Are the content-addressed caches consulted right now?"""
    return _active and _terms._enabled


def clear_unit_caches() -> None:
    """Empty every in-memory store (the disk tier is untouched)."""
    for cache in _ALL:
        cache.clear()


@contextmanager
def unit_cache_scope(disk_dir: str | Path | None = None
                     ) -> Iterator[None]:
    """Activate fresh caches for the dynamic extent of the block.

    Entering installs empty stores (and optionally a disk directory);
    exiting restores whatever was active before, so scopes nest and a
    library caller can never observe another caller's cache state.
    """
    global _active, _disk_dir
    saved_tables = [cache._table for cache in _ALL]
    saved_active, saved_disk = _active, _disk_dir
    for cache in _ALL:
        cache._table = OrderedDict()
    _active = True
    _disk_dir = Path(disk_dir) if disk_dir is not None else None
    try:
        yield
    finally:
        for cache, table in zip(_ALL, saved_tables):
            cache._table = table
        _active, _disk_dir = saved_active, saved_disk


def _emit_hit(name: str, tier: str, t_start: float | None = None) -> None:
    col = _obs_current()
    if col is not None:
        col.emit("cache.hit", {"cache": name, "tier": tier})
        if t_start is not None:
            # Hit service time: digesting the term plus the lookup
            # (and, for a disk hit, reading and reparsing the entry).
            col.observe(f"cache.hit.{name}",
                        time.perf_counter() - t_start)


def _emit_miss(name: str, t_start: float | None = None) -> None:
    col = _obs_current()
    if col is not None:
        col.emit("cache.miss", {"cache": name})
        if t_start is not None:
            # Miss service time: the overhead of *concluding* the miss
            # (key + lookup), not the recomputation that follows — the
            # stage spans already own that.
            col.observe(f"cache.miss.{name}",
                        time.perf_counter() - t_start)


# ---------------------------------------------------------------------------
# The compile cache (memory + optional disk tier)
# ---------------------------------------------------------------------------


def _disk_path(kind: str, key: str, suffix: str = ".scm") -> Path | None:
    if _disk_dir is None:
        return None
    return _disk_dir / f"v1-{_terms.SCHEMA}" / kind / f"{key}{suffix}"


def _disk_read(kind: str, key: str) -> Expr | None:
    path = _disk_path(kind, key)
    if path is None:
        return None
    from repro.lang.parser import parse_program

    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        return parse_program(text, origin=str(path))
    except Exception:
        # A corrupt or stale entry is a miss, not an error; drop it so
        # the recomputed result can take its slot.
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _disk_write(kind: str, key: str, expr: Expr) -> None:
    path = _disk_path(kind, key)
    if path is None:
        return
    from repro.lang.pretty import show

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(show(expr) + "\n", encoding="utf-8")
    except OSError:
        pass  # a read-only cache dir degrades to memory-only


def cached_compile(expr: Expr, compute: Callable[[], Expr]) -> Expr:
    """Compile through the content-addressed cache.

    Hits return the stored node itself, so structurally identical
    units across a program share one compiled body (the paper's
    footnote-8 code sharing, for free).  Keying digests only the
    *input* unit — never the (much larger) compiled output.
    """
    if not unit_caches_active():
        return compute()
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return compute()
    found = COMPILE_CACHE.get(key)
    if found is not _MISS:
        _emit_hit("compile", "memory", t_start)
        return found  # type: ignore[return-value]
    loaded = _disk_read("compile", key)
    if loaded is not None:
        _emit_hit("compile", "disk", t_start)
        COMPILE_CACHE.put(key, loaded)
        return loaded
    _emit_miss("compile", t_start)
    out = compute()
    COMPILE_CACHE.put(key, out)
    _disk_write("compile", key, out)
    return out


# ---------------------------------------------------------------------------
# The link cache (memory + optional disk tier)
# ---------------------------------------------------------------------------
#
# Linking is content-addressed exactly like compilation: the merged
# unit a compound reduces to is a pure function of its constituents'
# structure and the link-graph shape, so a compound whose constituent
# digests are unchanged short-circuits to the stored merge.  Keys are
# built from flat signature names (a clause's with/provides lists),
# never from qualified paths — renaming a box or moving a unit between
# files cannot invalidate an entry whose structure is unchanged.
#
# Failure discipline matches the other stores: clause violations are
# raised by the caller *before* the lookup, and a merge aborted by a
# :class:`repro.limits.BudgetExceeded` (deadline or substitution
# budget) propagates out of ``compute`` before anything is stored, so
# failed or exhausted links are never cached.


def link_key(compound, first: Expr, second: Expr) -> str | None:
    """The content key of one compound-link step (hex), or ``None``.

    Digests the two constituent units' ``tk1`` keys plus the link-graph
    shape: the compound's imports/exports and each clause's
    with/provides name lists.  ``None`` when either constituent embeds
    run-time data (machine states are never cached).
    """
    import hashlib

    k1 = _terms.try_term_key(first)
    if k1 is None:
        return None
    k2 = _terms.try_term_key(second)
    if k2 is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    h.update(_terms.SCHEMA.encode("ascii"))
    h.update(b"merge")
    for part in (k1, k2):
        h.update(part.encode("ascii"))
    for names in (compound.imports, compound.exports,
                  compound.first.withs, compound.first.provides,
                  compound.second.withs, compound.second.provides):
        h.update(b"/")
        for name in names:
            data = name.encode("utf-8")
            h.update(str(len(data)).encode("ascii"))
            h.update(b":")
            h.update(data)
    return h.hexdigest()


def _disk_read_unit(key: str) -> Expr | None:
    """Read a link-tier entry; anything but a single unit is corrupt."""
    from repro.units.ast import UnitExpr

    loaded = _disk_read("link", key)
    if loaded is None or isinstance(loaded, UnitExpr):
        return loaded
    path = _disk_path("link", key)
    if path is not None:
        try:
            path.unlink()
        except OSError:
            pass
    return None


def cached_link(compound, first: Expr, second: Expr,
                compute: Callable[[], Expr]) -> Expr:
    """Merge a compound's constituents through the link cache.

    Hits return the stored merged unit itself, so an already-resolved
    subgraph is shared instead of re-walked — the static linker and
    the rewriting machine both come through here, and a subtree either
    one resolved primes the other.  Deadline checks happen in the
    caller before the lookup, so budget-governed runs poll the clock
    on the fast path too.
    """
    if not unit_caches_active():
        return compute()
    t_start = time.perf_counter()
    key = link_key(compound, first, second)
    if key is None:
        return compute()
    found = LINK_CACHE.get(key)
    if found is not _MISS:
        _emit_hit("link", "memory", t_start)
        return found  # type: ignore[return-value]
    loaded = _disk_read_unit(key)
    if loaded is not None:
        _emit_hit("link", "disk", t_start)
        LINK_CACHE.put(key, loaded)
        return loaded
    _emit_miss("link", t_start)
    out = compute()
    LINK_CACHE.put(key, out)
    _disk_write("link", key, out)
    return out


def cached_optimize(unit: Expr, rounds: int,
                    compute: Callable[[], Expr]) -> Expr:
    """Optimize a unit through the link cache (memory tier only).

    The Section 4.2.4 optimizer runs as the second half of the link
    stage on the merged unit, is deterministic, and emits no events —
    so its output is content-addressed under the same ``link`` store,
    keyed on the input unit's digest and the round count.  Exceptions
    (including budget exhaustion mid-substitution) propagate before
    anything is stored.
    """
    if not unit_caches_active():
        return compute()
    t_start = time.perf_counter()
    key = _terms.try_term_key(unit)
    if key is None:
        return compute()
    found = LINK_CACHE.get(("opt", key, rounds))
    if found is not _MISS:
        _emit_hit("link", "memory", t_start)
        return found  # type: ignore[return-value]
    _emit_miss("link", t_start)
    out = compute()
    LINK_CACHE.put(("opt", key, rounds), out)
    return out


# ---------------------------------------------------------------------------
# The check cache (successes only)
# ---------------------------------------------------------------------------


def checked_ok(expr: Expr, strict_valuable: bool) -> bool:
    """Did a structurally identical unit already pass this check?

    Emits the hit/miss event; a ``True`` return means the caller may
    skip re-checking.  Inactive caches answer ``False`` silently.
    """
    if not unit_caches_active():
        return False
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return False
    if CHECK_CACHE.get((key, strict_valuable)) is not _MISS:
        _emit_hit("check", "memory", t_start)
        return True
    _emit_miss("check", t_start)
    return False


def record_checked(expr: Expr, strict_valuable: bool) -> None:
    """Record that ``expr`` passed checking (no event: not a lookup)."""
    if not unit_caches_active():
        return
    key = _terms.try_term_key(expr)
    if key is not None:
        CHECK_CACHE.put((key, strict_valuable), True)


# ---------------------------------------------------------------------------
# The archive parse cache
# ---------------------------------------------------------------------------


def cached_parse(source: str, compute: Callable[[], Expr]) -> Expr:
    """Parse archived unit source through the cache.

    Keyed by the full text handed in — callers prepend any context
    (like the parse origin) that the cached syntax must agree with.
    """
    if not unit_caches_active():
        return compute()
    import hashlib

    t_start = time.perf_counter()
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    found = PARSE_CACHE.get(key)
    if found is not _MISS:
        _emit_hit("dynlink", "memory", t_start)
        return found  # type: ignore[return-value]
    _emit_miss("dynlink", t_start)
    out = compute()
    PARSE_CACHE.put(key, out)
    return out


# ---------------------------------------------------------------------------
# The codegen (pycode) cache: memory holds code objects, disk holds
# the generated Python source
# ---------------------------------------------------------------------------


def _pycode_compile(source: str):
    return compile(source, "<pycode>", "exec")


def _pycode_disk_read(key: str):
    """Load and compile a disk-tier source entry, or ``None``.

    An entry that fails to ``compile()`` — or compiles but does not
    define ``_main`` (a truncation at a line boundary parses fine) —
    is corrupt: unlink it and report a miss.
    """
    path = _disk_path("pycode", key, suffix=".py")
    if path is None:
        return None
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        code = _pycode_compile(source)
        if "_main" not in code.co_names:
            raise ValueError("no _main in cached module")
        return code
    except (SyntaxError, ValueError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _pycode_disk_write(key: str, source: str) -> None:
    path = _disk_path("pycode", key, suffix=".py")
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    except OSError:
        pass


def cached_pycode(expr: Expr, generate: Callable[[], str]):
    """Generate + compile a program's Python module through the cache.

    The memory tier stores the ready code object; the disk tier stores
    the generated source at ``v1-tk1/pycode/<digest>.py`` (codegen is
    deterministic in the program's shape, so equal digests mean equal
    source).  Exceptions from ``generate`` or ``compile`` — including
    budget exhaustion surfacing mid-codegen — propagate before
    anything is stored, so failed compilations are never cached.
    """
    if not unit_caches_active():
        return _pycode_compile(generate())
    t_start = time.perf_counter()
    key = _terms.try_term_key(expr)
    if key is None:
        return _pycode_compile(generate())
    found = PYCODE_CACHE.get(key)
    if found is not _MISS:
        _emit_hit("pycode", "memory", t_start)
        return found
    loaded = _pycode_disk_read(key)
    if loaded is not None:
        _emit_hit("pycode", "disk", t_start)
        PYCODE_CACHE.put(key, loaded)
        return loaded
    _emit_miss("pycode", t_start)
    source = generate()
    code = _pycode_compile(source)
    PYCODE_CACHE.put(key, code)
    _pycode_disk_write(key, source)
    return code


# ---------------------------------------------------------------------------
# The flatten memo (memory tier only)
# ---------------------------------------------------------------------------
#
# Warm link time is dominated by re-walking the whole program tree even
# when every individual merge hits the link store.  The memo caches the
# *flattened result of an entire compound subtree*, keyed on the
# subtree's digest plus everything `_flatten` consults about its
# context: the unit bindings in scope (clause variables resolve through
# them) and the program's assigned-name set (which gates that
# resolution).  A hit skips the subtree walk entirely; the linker
# replays the recorded `link.static`/`reduce.compound` span kinds and
# stat deltas so trace-event counts and `LinkStats` stay
# cache-invariant (the differential sweeps compare both).  Failed
# merges raise out of the compute path before anything is stored.


def flatten_key(expr: Expr, units_in_scope: dict,
                assigned: frozenset) -> tuple | None:
    """The context-complete memo key for one compound subtree."""
    if not unit_caches_active():
        return None
    key = _terms.try_term_key(expr)
    if key is None:
        return None
    scope_sig = []
    for name in sorted(units_in_scope):
        unit_key = _terms.try_term_key(units_in_scope[name])
        if unit_key is None:
            return None
        scope_sig.append((name, unit_key))
    return (key, tuple(scope_sig), tuple(sorted(assigned)))


def flatten_lookup(key: tuple | None):
    """The stored ``(result, merged, dynamic, replay)`` entry, or
    ``None`` (emitting the hit/miss event either way)."""
    if key is None:
        return None
    t_start = time.perf_counter()
    found = FLATTEN_CACHE.get(key)
    if found is not _MISS:
        _emit_hit("flatten", "memory", t_start)
        return found
    _emit_miss("flatten", t_start)
    return None


def flatten_store(key: tuple | None, entry: tuple) -> None:
    if key is not None:
        FLATTEN_CACHE.put(key, entry)


def replay_link_events(replay: tuple) -> None:
    """Re-emit the span/event *kinds* a memoized flatten produced.

    Each marker is ``("m", defns)`` for a static merge (a
    ``link.static`` span enclosing the ``reduce.compound`` span, as the
    computed path nests them) or ``("d",)`` for a compound left
    dynamic (a flat ``link.static`` event) — so event counts per kind
    are identical with and without the memo.
    """
    col = _obs_current()
    if col is None:
        return
    for marker in replay:
        if marker[0] == "m":
            with col.span("link.static", {"merged": True, "replay": True}):
                with col.span("reduce.compound", {"defns": marker[1],
                                                  "replay": True}):
                    pass
        else:
            col.emit("link.static", {"merged": False, "replay": True})
