"""Whole-program static linking: flattening known compounds.

A ``compound`` whose constituents are syntactically known units can be
merged at compile time (Figure 11's reduction applied statically) —
"since a compound unit is equivalent to a simple unit that merges its
constituent units, intra-unit optimization techniques naturally extend
to inter-unit optimizations when a compound expression has known
constituent units" (Section 4.2.4).

:func:`flatten` rewrites every such compound bottom-up into the merged
atomic unit; compounds over *dynamic* constituents (variables, or unit
expressions chosen at run time) are left alone, preserving behaviour.
:func:`link_and_optimize` composes flattening with the Section 4.2.4
optimizer, yielding the static-linker pipeline:

    parse -> check -> flatten -> optimize -> run/compile
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    App,
    Expr,
    If,
    Lambda,
    Let,
    Letrec,
    Lit,
    Seq,
    SetBang,
    Var,
)
from repro.obs import current as _obs_current
from repro.units import cache as _cache
from repro.units.ast import CompoundExpr, InvokeExpr, LinkClause, UnitExpr
from repro.units.optimize import optimize_expr, optimize_unit
from repro.units.reduce import merge_compound


@dataclass
class LinkStats:
    """What flattening accomplished."""

    merged: int = 0
    left_dynamic: int = 0
    #: Event-replay log for the flatten memo (one marker per compound
    #: decision, in emission order); ``None`` when the caches are off.
    log: list | None = field(default=None, repr=False, compare=False)

    def __str__(self) -> str:
        return (f"{self.merged} compound(s) statically linked, "
                f"{self.left_dynamic} left for run time")


def flatten(expr: Expr, stats: LinkStats | None = None) -> Expr:
    """Merge every compound with syntactically known constituents.

    "Known" includes variables bound (by an enclosing ``let`` or
    ``letrec``) directly to a unit expression and never assigned: a
    clause position referencing such a variable resolves to the unit
    literal before merging.  This is safe because (a) each link of a
    unit creates a fresh instance anyway, so duplicating the *syntax*
    duplicates nothing observable, and (b) the resolved unit's free
    variables remain in scope at the use site (the binding's scope
    encloses it).
    """
    stats = stats if stats is not None else LinkStats()
    from repro.units.optimize import _assigned_names

    if stats.log is None and _cache.unit_caches_active():
        stats.log = []
    assigned = _assigned_names(expr)
    return _flatten(expr, stats, {}, assigned)


def _flatten(expr: Expr, stats: LinkStats,
             units_in_scope: dict[str, UnitExpr],
             assigned: frozenset[str]) -> Expr:
    def go(e: Expr, scope=None) -> Expr:
        return _flatten(e, stats,
                        scope if scope is not None else units_in_scope,
                        assigned)

    def scope_minus(names) -> dict[str, UnitExpr]:
        # Binders rarely shadow a unit binding: share the scope dict
        # unchanged unless a name actually collides, so deep programs
        # do not copy the scope at every binder.
        if not units_in_scope or not any(n in units_in_scope
                                         for n in names):
            return units_in_scope
        return {k: v for k, v in units_in_scope.items() if k not in names}

    if isinstance(expr, (Lit, Var)):
        return expr
    if isinstance(expr, Lambda):
        return Lambda(expr.params,
                      go(expr.body, scope_minus(expr.params)), expr.loc)
    if isinstance(expr, App):
        return App(go(expr.fn), tuple(go(a) for a in expr.args), expr.loc)
    if isinstance(expr, If):
        return If(go(expr.test), go(expr.then), go(expr.orelse), expr.loc)
    if isinstance(expr, (Let, Letrec)):
        node = type(expr)
        bound = {n for n, _ in expr.bindings}
        rhs_scope = scope_minus(bound) if isinstance(expr, Let) \
            else None  # letrec: computed below, after flattening
        if isinstance(expr, Let):
            new_bindings = tuple((n, go(e, rhs_scope))
                                 for n, e in expr.bindings)
        else:
            # letrec right-hand sides see the letrec's own unit
            # bindings; build the extended scope in two passes.
            pre = tuple((n, _flatten(e, stats, scope_minus(bound), assigned))
                        for n, e in expr.bindings)
            inner0 = dict(scope_minus(bound))
            for n, e in pre:
                if isinstance(e, UnitExpr) and n not in assigned:
                    inner0[n] = e
            new_bindings = tuple((n, _flatten(e, stats, inner0, assigned))
                                 for n, e in pre)
        inner = dict(scope_minus(bound))
        for n, e in new_bindings:
            if isinstance(e, UnitExpr) and n not in assigned:
                inner[n] = e
        return node(new_bindings, go(expr.body, inner), expr.loc)
    if isinstance(expr, SetBang):
        return SetBang(expr.name, go(expr.expr), expr.loc)
    if isinstance(expr, Seq):
        return Seq(tuple(go(e) for e in expr.exprs), expr.loc)
    if isinstance(expr, UnitExpr):
        bound = set(expr.imports) | set(expr.defined)
        inner = scope_minus(bound)
        return UnitExpr(expr.imports, expr.exports,
                        tuple((n, go(e, inner)) for n, e in expr.defns),
                        go(expr.init, inner), expr.loc)
    if isinstance(expr, CompoundExpr):
        # Whole-subtree memo: a compound whose digest and flattening
        # context are unchanged returns its stored result without
        # re-walking the subtree; stat deltas and span kinds replay so
        # the memo stays observationally invisible.
        memo_key = _cache.flatten_key(expr, units_in_scope, assigned)
        if memo_key is not None:
            from repro import limits as _limits

            budget = _limits.current()
            if budget is not None:
                budget.check_deadline(expr.loc)
            hit = _cache.flatten_lookup(memo_key)
            if hit is not None:
                result, d_merged, d_dynamic, replay = hit
                stats.merged += d_merged
                stats.left_dynamic += d_dynamic
                if stats.log is not None:
                    stats.log.extend(replay)
                _cache.replay_link_events(replay)
                return result
        base_merged = stats.merged
        base_dynamic = stats.left_dynamic
        log_start = len(stats.log) if stats.log is not None else 0

        def resolve(e: Expr) -> Expr:
            flat = go(e)
            if isinstance(flat, Var) and flat.name in units_in_scope:
                return units_in_scope[flat.name]
            return flat

        first = resolve(expr.first.expr)
        second = resolve(expr.second.expr)
        rebuilt = CompoundExpr(
            expr.imports, expr.exports,
            LinkClause(first, expr.first.withs, expr.first.provides),
            LinkClause(second, expr.second.withs, expr.second.provides),
            expr.loc)
        col = _obs_current()
        if isinstance(first, UnitExpr) and isinstance(second, UnitExpr):
            stats.merged += 1
            if col is None:
                out = merge_compound(rebuilt, first, second)
            else:
                # Span: the reduce.compound merge it triggers nests
                # inside.
                with col.span("link.static", {"merged": True}):
                    out = merge_compound(rebuilt, first, second)
            if stats.log is not None:
                stats.log.append(
                    ("m", len(first.defns) + len(second.defns)))
        else:
            stats.left_dynamic += 1
            if col is not None:
                col.emit("link.static", {"merged": False})
            if stats.log is not None:
                stats.log.append(("d",))
            out = rebuilt
        if memo_key is not None and stats.log is not None:
            _cache.flatten_store(memo_key, (
                out,
                stats.merged - base_merged,
                stats.left_dynamic - base_dynamic,
                tuple(stats.log[log_start:])))
        return out
    if isinstance(expr, InvokeExpr):
        return InvokeExpr(
            go(expr.expr),
            tuple((n, go(e)) for n, e in expr.links),
            expr.loc)
    raise TypeError(f"flatten: unknown expression {expr!r}")


def link_and_optimize(
        expr: Expr,
        timings: dict[str, float] | None = None) -> tuple[Expr, LinkStats]:
    """The static-linker pipeline: flatten, then optimize.

    Returns the transformed program and the linking statistics.
    Behaviour is preserved (differential tests): only
    syntactically-known compounds are merged, and the optimizer only
    touches valuable definitions.

    ``timings``, when given, receives wall seconds for the two
    sub-stages under the keys ``"flatten"`` and ``"optimize"`` — the
    bench harness uses this to break the link stage down without
    requiring a trace collector.
    """
    import time as _time

    stats = LinkStats()
    col = _obs_current()
    if col is not None:
        with col.timed("link.flatten"):
            t0 = _time.perf_counter()
            flat = flatten(expr, stats)
            t1 = _time.perf_counter()
        with col.timed("link.optimize"):
            optimized = optimize_expr(flat)
            if isinstance(optimized, UnitExpr):
                optimized = optimize_unit(optimized)
            t2 = _time.perf_counter()
    else:
        t0 = _time.perf_counter()
        flat = flatten(expr, stats)
        t1 = _time.perf_counter()
        optimized = optimize_expr(flat)
        if isinstance(optimized, UnitExpr):
            optimized = optimize_unit(optimized)
        t2 = _time.perf_counter()
    if timings is not None:
        timings["flatten"] = t1 - t0
        timings["optimize"] = t2 - t1
    return optimized, stats
