#!/bin/sh
# Refresh the committed demo baselines under benchmarks/.metrics/:
#
#   baseline.json          per-kind event counts, gated by
#                          `repro trace diff` in scripts/check.sh
#   metrics_baseline.json  full `metrics1` snapshot, gated (counts
#                          only) by `repro metrics diff`
#
#   scripts/update_metrics_baseline.sh    # from anywhere in the repo
#
# Run this after a change that legitimately alters how many events the
# phone-book demo emits (new spans, new checks, a different reduction
# count) and commit the regenerated files alongside that change.
#
# baseline.json keeps only counters: timers vary run to run, so a
# baseline holding them would never diff cleanly.  `repro trace diff`
# recognizes this counters-only shape.  metrics_baseline.json keeps the
# whole snapshot (histogram buckets included) so `repro metrics report`
# can render it, but the check.sh gate compares observation counts
# only — never wall-clock.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

metrics_file="$(mktemp)"
trap 'rm -f "$metrics_file"' EXIT
python -m repro --metrics-out "$metrics_file" demo \
    examples/phonebook.scm > /dev/null

mkdir -p benchmarks/.metrics
python - "$metrics_file" <<'EOF'
import json
import sys

metrics = json.load(open(sys.argv[1]))
baseline = {
    "note": ("per-kind event counts of `repro demo examples/phonebook.scm`;"
             " regenerate with scripts/update_metrics_baseline.sh"),
    "counters": dict(sorted(metrics["counters"].items())),
}
path = "benchmarks/.metrics/baseline.json"
with open(path, "w") as out:
    json.dump(baseline, out, indent=2)
    out.write("\n")
print(f"wrote {path}: {len(baseline['counters'])} counters")

snap_path = "benchmarks/.metrics/metrics_baseline.json"
with open(snap_path, "w") as out:
    json.dump(metrics, out, indent=2, sort_keys=True)
    out.write("\n")
print(f"wrote {snap_path}: {len(metrics.get('histograms', {}))} "
      f"histogram(s), {len(metrics['counters'])} counters")
EOF
