#!/bin/sh
# Refresh benchmarks/.metrics/baseline.json — the per-kind event-count
# baseline that scripts/check.sh gates against with `repro trace diff`.
#
#   scripts/update_metrics_baseline.sh    # from anywhere in the repo
#
# Run this after a change that legitimately alters how many events the
# phone-book demo emits (new spans, new checks, a different reduction
# count) and commit the regenerated file alongside that change.
#
# Only counters are kept: timers vary run to run, so a baseline holding
# them would never diff cleanly.  `repro trace diff` recognizes this
# counters-only shape.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

metrics_file="$(mktemp)"
trap 'rm -f "$metrics_file"' EXIT
python -m repro --metrics-out "$metrics_file" demo \
    examples/phonebook.scm > /dev/null

mkdir -p benchmarks/.metrics
python - "$metrics_file" <<'EOF'
import json
import sys

metrics = json.load(open(sys.argv[1]))
baseline = {
    "note": ("per-kind event counts of `repro demo examples/phonebook.scm`;"
             " regenerate with scripts/update_metrics_baseline.sh"),
    "counters": dict(sorted(metrics["counters"].items())),
}
path = "benchmarks/.metrics/baseline.json"
with open(path, "w") as out:
    json.dump(baseline, out, indent=2)
    out.write("\n")
print(f"wrote {path}: {len(baseline['counters'])} counters")
EOF
