#!/bin/sh
# CI entry point: the tier-1 test suite plus an observability smoke run.
#
#   scripts/check.sh            # from the repository root
#
# Exits non-zero if the tests fail, if the traced phone-book demo
# fails, if the resulting trace does not cover all event families or
# lacks a real span tree, if the demo's per-kind event counts drift
# past the committed baseline (benchmarks/.metrics/baseline.json —
# regenerate with scripts/update_metrics_baseline.sh after intentional
# changes), if the demo records no cache hits, or if the quick bench
# smoke finds the caches inert.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> tier-1: pytest"
python -m pytest -x -q

echo "==> smoke: traced phone-book demo"
trace_file="$(mktemp)"
metrics_file="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file"' EXIT
python -m repro --trace "$trace_file" --metrics-out "$metrics_file" \
    demo examples/phonebook.scm

python - "$trace_file" "$metrics_file" <<'EOF'
import json
import sys
from repro.obs import read_jsonl

events = read_jsonl(sys.argv[1])
families = {e.family for e in events}
missing = {"check", "link", "reduce", "unit", "dynlink", "cache"} - families
assert events, "trace is empty"
assert not missing, f"trace missing families: {sorted(missing)}"
counters = json.load(open(sys.argv[2]))["counters"]
assert counters.get("cache.hit", 0) >= 1, \
    f"demo recorded no cache hits: {counters}"
print(f"trace ok: {len(events)} events, families {sorted(families)}, "
      f"{counters['cache.hit']} cache hit(s)")
EOF

echo "==> smoke: trace report (span tree over the demo trace)"
python -m repro trace report "$trace_file" --min-spans 5

echo "==> gate: event counts vs committed baseline"
python -m repro trace diff benchmarks/.metrics/baseline.json \
    "$trace_file" --threshold 0.10

echo "==> smoke: bench --quick (cached vs --no-term-cache)"
bench_out="$(mktemp)"
bench_snap="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap"' EXIT
python -m repro bench --quick --out "$bench_out" --snapshot "$bench_snap"

echo "==> all checks passed"
