#!/bin/sh
# CI entry point: the tier-1 test suite plus an observability smoke run.
#
#   scripts/check.sh            # from the repository root
#
# Exits non-zero if the tests fail, if the traced phone-book demo
# fails, if the resulting trace does not cover all event families or
# lacks a real span tree, if the demo's per-kind event counts drift
# past the committed baseline (benchmarks/.metrics/baseline.json —
# regenerate with scripts/update_metrics_baseline.sh after intentional
# changes), if its histogram observation counts drift past the
# committed metrics1 snapshot (benchmarks/.metrics/metrics_baseline.json,
# same refresh script), if concurrent traced scopes cross-contaminate
# span trees or drop events, if the demo records no cache hits, if the
# quick bench
# smoke finds the caches inert, if a warm sharing-064 pass fails to
# serve its whole flattened subtree from the flatten memo
# (docs/PERFORMANCE.md, "Link caching"), if a second pycode demo run
# against the same cache dir misses the codegen store, or if the
# batch-isolation smoke (one good, one looping, one ill-typed
# program) does not yield exactly the expected records and
# limit.exceeded trace event (docs/ROBUSTNESS.md), if the link-server
# smoke (a real daemon, 8 concurrent mixed requests including one
# chaos-injected failure and one over-budget item) degrades any
# healthy request or drops events, if the server fails to drain
# cleanly on SIGTERM, if `metrics report` rejects a live-server
# metrics envelope, if the multi-process smoke (a 2-process daemon,
# mixed healthy/poison batch, one worker SIGKILLed mid-run) loses a
# request, fails to respawn the killed worker, or fails to drain, or
# if the chaos sweep's differential assertions fail (docs/SERVING.md).
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> tier-1: pytest"
python -m pytest -x -q

echo "==> smoke: traced phone-book demo"
trace_file="$(mktemp)"
metrics_file="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file"' EXIT
python -m repro --trace "$trace_file" --metrics-out "$metrics_file" \
    demo examples/phonebook.scm

python - "$trace_file" "$metrics_file" <<'EOF'
import json
import sys
from repro.obs import read_jsonl

events = read_jsonl(sys.argv[1])
families = {e.family for e in events}
missing = {"check", "link", "reduce", "unit", "dynlink", "cache"} - families
assert events, "trace is empty"
assert not missing, f"trace missing families: {sorted(missing)}"
counters = json.load(open(sys.argv[2]))["counters"]
assert counters.get("cache.hit", 0) >= 1, \
    f"demo recorded no cache hits: {counters}"
print(f"trace ok: {len(events)} events, families {sorted(families)}, "
      f"{counters['cache.hit']} cache hit(s)")
EOF

echo "==> smoke: trace report (span tree over the demo trace)"
python -m repro trace report "$trace_file" --min-spans 5

echo "==> gate: event counts vs committed baseline"
python -m repro trace diff benchmarks/.metrics/baseline.json \
    "$trace_file" --threshold 0.10

echo "==> gate: histogram counts vs committed metrics baseline"
python -m repro metrics diff benchmarks/.metrics/metrics_baseline.json \
    "$metrics_file" --threshold 0.10

echo "==> smoke: concurrent traced scopes (8 workers, one registry)"
python - <<'EOF'
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs.analyze import validate_spans

WORKERS, ITERS = 8, 20
registry = obs.MetricsRegistry()

def work(worker: int) -> int:
    with registry.scope() as col:
        for _ in range(ITERS):
            with col.span("check.unit", {"worker": worker}):
                with col.span("unit.compile"):
                    col.emit("reduce.step")
        problems = validate_spans(col.events)
        assert not problems, f"worker {worker} span tree: {problems}"
        assert col.dropped == 0, f"worker {worker} dropped events"
        return col.counters["reduce.step"]

with ThreadPoolExecutor(max_workers=WORKERS) as pool:
    per_worker = list(pool.map(work, range(WORKERS)))

snap = registry.snapshot()
total = WORKERS * ITERS
assert sum(per_worker) == total, per_worker
assert snap["counters"]["reduce.step"] == total, snap["counters"]
assert snap["counters"].get("trace.dropped", 0) == 0
assert snap["histograms"]["check.unit"]["count"] == total
assert snap["flushes"] == WORKERS
print(f"concurrency ok: {WORKERS} workers x {ITERS} spans, "
      f"{total} steps, one coherent snapshot, 0 dropped")
EOF

echo "==> smoke: bench --quick (cached vs --no-term-cache)"
bench_out="$(mktemp)"
bench_snap="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap"' EXIT
python -m repro bench --quick --out "$bench_out" --snapshot "$bench_snap"

echo "==> smoke: incremental linking (sharing-064 warm link)"
python - <<'EOF'
from repro import obs
from repro.bench import sharing_program, _pipeline
from repro.limits import python_recursion_headroom
from repro.units.cache import unit_cache_scope

# One scope, two passes: the first primes the stores, the second must
# link the 64-copy sharing program without recomputing anything — one
# flatten-memo hit at the root (the whole flattened subtree), zero
# misses anywhere in the link family.
with python_recursion_headroom(40000):
    with unit_cache_scope():
        cold = _pipeline(sharing_program(64))
        with obs.collecting() as col:
            warm = _pipeline(sharing_program(64))

def count(kind, cache):
    return sum(1 for e in col.events if e.kind == kind
               and e.fields.get("cache") == cache)

flatten_hits = count("cache.hit", "flatten")
assert flatten_hits >= 1, \
    "warm sharing-064 pass never hit the flatten memo"
for cache in ("flatten", "link"):
    misses = count("cache.miss", cache)
    assert misses == 0, \
        f"warm sharing-064 pass missed the {cache} store {misses}x"
assert warm["link"] < cold["link"], \
    f"warm link ({warm['link']:.3f}s) not faster than cold " \
    f"({cold['link']:.3f}s)"
print(f"link cache ok: {flatten_hits} flatten hit(s), 0 misses; "
      f"link {cold['link']:.3f}s cold -> {warm['link']:.3f}s warm")
EOF

echo "==> smoke: pycode backend (codegen cache across invocations)"
pycode_cache_dir="$(mktemp -d)"
pycode_trace="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap" \
    "$pycode_trace"; rm -rf "$pycode_cache_dir"' EXIT
# Two demo runs against one cache dir: the first populates
# v1-tk1/pycode/, the second must serve the code object from it.
python -m repro --cache-dir "$pycode_cache_dir" \
    demo --backend pycode examples/phonebook.scm
python -m repro --cache-dir "$pycode_cache_dir" --trace "$pycode_trace" \
    demo --backend pycode examples/phonebook.scm

python - "$pycode_trace" "$pycode_cache_dir" <<'EOF'
import pathlib
import sys
from repro.obs import read_jsonl

events = read_jsonl(sys.argv[1])
hits = [e for e in events if e.kind == "cache.hit"
        and e.fields.get("cache") == "pycode"]
misses = [e for e in events if e.kind == "cache.miss"
          and e.fields.get("cache") == "pycode"]
assert hits, "second pycode demo run never hit the codegen cache"
assert not misses, \
    f"second pycode demo run missed the codegen cache {len(misses)}x"
entries = list(pathlib.Path(sys.argv[2]).rglob("pycode/*.py"))
assert entries, "codegen disk tier wrote no entries"
print(f"pycode cache ok: {len(hits)} hit(s), 0 misses, "
      f"{len(entries)} disk entr{'y' if len(entries) == 1 else 'ies'}")
EOF

echo "==> smoke: batch isolation (good + looping + ill-typed)"
batch_dir="$(mktemp -d)"
batch_records="$(mktemp)"
batch_trace="$(mktemp)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap" \
    "$pycode_trace" "$batch_records" "$batch_trace"; \
    rm -rf "$pycode_cache_dir" "$batch_dir"' EXIT
cat > "$batch_dir/a_good.scm" <<'EOF'
(invoke (unit (import) (export greet)
  (define greet (lambda (who) (string-append "hello, " who)))
  (greet "world")))
EOF
cat > "$batch_dir/b_loop.scm" <<'EOF'
(letrec ((spin (lambda (n) (spin (+ n 1))))) (spin 0))
EOF
cat > "$batch_dir/c_bad.scm" <<'EOF'
(invoke (unit (import) (export nope) (define x 1) x))
EOF
# The batch must complete (exit 0) with exactly one failure record per
# bad item, and the looping item's exhaustion must surface as a
# limit.exceeded trace event.
python -m repro --trace "$batch_trace" batch "$batch_dir" \
    --eval-steps 20000 --deadline 10 --out "$batch_records"

python - "$batch_records" "$batch_trace" <<'EOF'
import json
import sys
from repro.obs import KINDS, read_jsonl

records = [json.loads(line) for line in open(sys.argv[1])]
by_file = {r["file"].rsplit("/", 1)[-1]: r for r in records}
assert len(records) == 3, f"expected 3 records, got {len(records)}"
assert by_file["a_good.scm"]["status"] == "ok"
assert by_file["b_loop.scm"]["status"] == "error"
assert by_file["b_loop.scm"]["error"]["type"] == "BudgetExceeded"
assert by_file["b_loop.scm"]["error"]["resource"] == "eval_steps"
assert by_file["c_bad.scm"]["status"] == "error"
assert by_file["c_bad.scm"]["error"]["type"] == "CheckError"
assert "limit.exceeded" in KINDS, "limit.exceeded not registered"
kinds = [e.kind for e in read_jsonl(sys.argv[2])]
assert kinds.count("limit.exceeded") == 1, \
    f"expected one limit.exceeded event, got {kinds.count('limit.exceeded')}"
print(f"batch ok: 1 ok, 2 failure records, limit.exceeded traced")
EOF

echo "==> smoke: link server (8 concurrent mixed requests, SIGTERM drain)"
serve_dir="$(mktemp -d)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap" \
    "$pycode_trace" "$batch_records" "$batch_trace"; \
    rm -rf "$pycode_cache_dir" "$batch_dir" "$serve_dir"' EXIT
python -m repro serve --port-file "$serve_dir/port" --allow-chaos \
    --workers 4 --deadline 30 > "$serve_dir/log" 2>&1 &
serve_pid=$!

python - "$serve_dir/port" "$serve_dir/metrics.json" <<'EOF'
import json
import sys
from concurrent.futures import ThreadPoolExecutor

from repro.serve.client import ServeClient, read_port_file

port = read_port_file(sys.argv[1], timeout_s=30)
GOOD = ("(invoke (unit (import) (export g)"
        " (define g (lambda (n) (* n 7))) (g 6)))")
LOOP = "(letrec ((spin (lambda (n) (spin (+ n 1))))) (spin 0))"

# Eight concurrent requests: six healthy across ops/backends, one
# with an injected poison fault, one that exhausts its step budget.
requests = [
    {"op": "run", "source": GOOD},
    {"op": "run", "source": GOOD, "backend": "interp"},
    {"op": "run", "source": GOOD, "backend": "machine"},
    {"op": "run", "source": GOOD, "archive": True},
    {"op": "check", "source": GOOD},
    {"op": "link", "source": GOOD},
    {"op": "run", "source": GOOD, "archive": True, "chaos": ["poison"]},
    {"op": "run", "source": LOOP, "eval_steps": 5000},
]

def send(fields):
    fields = dict(fields)
    op = fields.pop("op")
    with ServeClient("127.0.0.1", port) as client:
        return client.request(op, **fields)

with ThreadPoolExecutor(max_workers=len(requests)) as pool:
    responses = list(pool.map(send, requests))

# Every healthy request succeeded despite the chaotic neighbours.
for fields, resp in zip(requests[:6], responses[:6]):
    assert resp["status"] == "ok", (fields, resp)
    if fields["op"] == "run":
        assert resp["value"] == "42", (fields, resp)
poisoned, exhausted = responses[6], responses[7]
assert poisoned["status"] == "error", poisoned
assert poisoned["error"]["type"] == "ArchiveError", poisoned
assert exhausted["status"] == "error", exhausted
assert exhausted["error"]["type"] == "BudgetExceeded", exhausted
assert exhausted["error"]["code"] == 3, exhausted

with ServeClient("127.0.0.1", port) as client:
    envelope = client.request("metrics")
snap = envelope["metrics"]
assert snap["counters"]["serve.requests"] == len(requests), \
    snap["counters"]
assert snap["dropped"] == 0, "server dropped trace events"
json.dump(envelope, open(sys.argv[2], "w"))
print(f"serve ok: 6 healthy + 1 chaos + 1 over-budget, "
      f"{snap['counters']['serve.requests']} served, 0 dropped")
EOF

kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "^drained$" "$serve_dir/log" || {
    echo "server did not drain cleanly on SIGTERM:"
    cat "$serve_dir/log"
    exit 1
}
echo "serve drain ok: SIGTERM -> drained"

echo "==> smoke: metrics report on the live-server envelope"
python -m repro metrics report "$serve_dir/metrics.json"

echo "==> smoke: multi-process pool (2 workers, SIGKILL one mid-batch)"
procs_dir="$(mktemp -d)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_out" "$bench_snap" \
    "$pycode_trace" "$batch_records" "$batch_trace"; \
    rm -rf "$pycode_cache_dir" "$batch_dir" "$serve_dir" "$procs_dir"' EXIT
python -m repro serve --processes 2 --port-file "$procs_dir/port" \
    --allow-chaos --deadline 60 > "$procs_dir/log" 2>&1 &
procs_pid=$!

python - "$procs_dir/port" <<'EOF'
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve.client import ServeClient, read_port_file

port = read_port_file(sys.argv[1], timeout_s=60)
GOOD = ("(invoke (unit (import) (export g)"
        " (define g (lambda (n) (* n 7))) (g 6)))")

with ServeClient("127.0.0.1", port, timeout_s=120.0) as client:
    workers = client.request("stats")["workers"]
assert workers["mode"] == "processes", workers
pids = workers["pids"]
assert len(pids) == 2, workers

# Ten requests — nine healthy, one poisoned — while a thread SIGKILLs
# one worker ~0.15s into the batch (a real external kill, not the
# chaos hook): the batch must still complete with the right answers.
requests = [{"op": "run", "source": GOOD} for _ in range(9)]
requests.append({"op": "run", "source": GOOD, "archive": True,
                 "chaos": ["poison"]})

def send(fields):
    fields = dict(fields)
    op = fields.pop("op")
    with ServeClient("127.0.0.1", port, timeout_s=120.0) as client:
        return client.request(op, **fields)

killer = threading.Timer(0.15, os.kill, (pids[0], signal.SIGKILL))
killer.start()
with ThreadPoolExecutor(max_workers=4) as pool:
    responses = list(pool.map(send, requests))
killer.join()

ok = [r for r in responses if r["status"] == "ok"]
poisoned = [r for r in responses if r["status"] == "error"
            and r["error"]["type"] == "ArchiveError"]
crashed = [r for r in responses if r["status"] == "error"
           and r["error"]["type"] == "WorkerCrashed"]
assert len(poisoned) == 1, responses
assert len(ok) + len(crashed) == 9, responses
assert all(r["value"] == "42" for r in ok), responses

with ServeClient("127.0.0.1", port, timeout_s=120.0) as client:
    stats = client.request("stats")
    envelope = client.request("metrics")
after = stats["workers"]
assert after["deaths"] >= 1, after
assert after["respawns"] >= 1, after
assert pids[0] not in after["pids"], after
assert len(after["pids"]) == 2, after
assert envelope["metrics"]["dropped"] == 0
print(f"process pool ok: {len(ok)} healthy + 1 poison"
      f"{' + %d requeue-failed' % len(crashed) if crashed else ''}, "
      f"worker {pids[0]} killed -> {after['respawns']} respawn(s), "
      f"0 dropped")
EOF

kill -TERM "$procs_pid"
wait "$procs_pid"
grep -q "^drained$" "$procs_dir/log" || {
    echo "process-mode server did not drain cleanly on SIGTERM:"
    cat "$procs_dir/log"
    exit 1
}
echo "process pool drain ok: SIGTERM -> drained"

echo "==> smoke: chaos sweep (repro serve --chaos)"
python -m repro serve --chaos

echo "==> all checks passed"
