#!/bin/sh
# The benchmark trajectory: cached vs --no-term-cache pipelines.
#
#   scripts/bench.sh            # full suite -> BENCH_results.json
#   scripts/bench.sh --quick    # two small cases, one repeat (CI smoke)
#
# Runs `repro bench`, writing BENCH_results.json at the repository root
# and a cache-counters snapshot under benchmarks/.metrics/ (the format
# `repro trace diff` reads).  Commit both when recording a new
# trajectory point; docs/PERFORMANCE.md explains how to read them.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m repro bench "$@" \
    --out BENCH_results.json \
    --snapshot benchmarks/.metrics/bench_cache.json
