"""Regenerate the paper's evaluation artifacts in one run.

Runs every figure reproduction, times it, and writes a markdown report
(stdout, or a file with ``--out``).  The benchmark harness
(``pytest benchmarks/ --benchmark-only``) gives statistically careful
numbers; this script gives the one-shot qualitative record used to
refresh EXPERIMENTS.md.

Usage:  python scripts/run_experiments.py [--out report.md]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.figures import FIGURES  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", help="write the report to a file")
    args = parser.parse_args()

    lines = ["# Figure reproduction report", ""]
    lines.append("| Fig | Title | Time | Status |")
    lines.append("|----:|-------|-----:|:------:|")
    details = ["", "## Reports", ""]
    failures = 0
    for figure in FIGURES:
        start = time.perf_counter()
        try:
            report = figure.run()
            status = "ok"
        except Exception as err:  # pragma: no cover - report path
            report = f"FAILED: {err}"
            status = "FAIL"
            failures += 1
        elapsed_ms = (time.perf_counter() - start) * 1000
        lines.append(f"| {figure.number} | {figure.title} "
                     f"| {elapsed_ms:.1f} ms | {status} |")
        details.append(f"### Figure {figure.number}: {figure.title}")
        details.append("")
        details.append("```")
        details.append(report.rstrip())
        details.append("```")
        details.append("")

    text = "\n".join(lines + details)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
